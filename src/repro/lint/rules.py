"""The determinism rules: one suppressible, named check per invariant.

Every rule is a class with an id, a one-line title and a fix hint; its
``check`` walks one :class:`~repro.lint.model.ModuleInfo` and yields
:class:`~repro.lint.findings.Finding` objects.  The engine owns quarantine
allowlists and pragma suppression — rules always report raw violations.

The rules (see README "Static analysis" for the contract they enforce):

* **DET001** — no wall-clock reads outside the profiling quarantine.
* **DET002** — no ambient randomness; draw from named streams (sim/rng.py).
* **DET003** — no iteration over set-typed values feeding order-sensitive
  sinks without an explicit ``sorted()``.
* **DET005** — no ``id()`` / ``hash(object)`` / address-dependent ordering.

(**DET004**, transitive kernel purity, needs the whole-package call graph
and lives in :mod:`repro.lint.purity`.)
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.findings import Finding
from repro.lint.model import ModuleInfo, is_set_annotation


class Rule:
    """Base class: id, human title and fix hint, plus the per-module check."""

    rule_id: str = ""
    title: str = ""
    hint: str = ""

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, module: ModuleInfo, node: ast.AST, message: str) -> Finding:
        return Finding(
            rule=self.rule_id,
            path=module.rel_path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
            hint=self.hint,
        )


# -- DET001: wall clock ---------------------------------------------------------------

#: resolved dotted names that read the host's wall clock
_WALL_CLOCK_CALLS = frozenset({
    "time.time", "time.time_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "time.monotonic", "time.monotonic_ns",
    "time.process_time", "time.process_time_ns",
    "time.clock_gettime", "time.clock_gettime_ns",
    "time.localtime", "time.gmtime",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
})


class WallClockRule(Rule):
    rule_id = "DET001"
    title = "no wall-clock reads outside the profiling quarantine"
    hint = (
        "simulation code must read virtual time from the engine clock; "
        "wall-clock measurement belongs in repro.obs.profiling.WallClockProfiler"
    )

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = module.resolve(node.func)
            if resolved in _WALL_CLOCK_CALLS:
                yield self.finding(module, node, f"wall-clock read {resolved}()")


# -- DET002: ambient randomness -------------------------------------------------------

#: numpy.random names that are *not* global mutable state (explicitly-seeded
#: construction surface)
_NUMPY_RANDOM_CONSTRUCTORS = frozenset({
    "default_rng", "Generator", "SeedSequence", "BitGenerator",
    "PCG64", "PCG64DXSM", "MT19937", "Philox", "SFC64",
})


class AmbientRandomnessRule(Rule):
    rule_id = "DET002"
    title = "no ambient randomness; draw from named streams"
    hint = (
        "draw from a named stream: engine.rng('subsystem') / "
        "repro.sim.rng.RandomStreams — never from process-global RNG state"
    )

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = module.resolve(node.func)
            if resolved is None:
                continue
            if resolved.startswith("random.") or resolved == "random":
                yield self.finding(
                    module, node, f"ambient stdlib randomness {resolved}()"
                )
            elif resolved == "os.urandom" or resolved.startswith("secrets.") or resolved == "uuid.uuid4":
                yield self.finding(module, node, f"OS entropy source {resolved}()")
            elif resolved.startswith("numpy.random."):
                tail = resolved[len("numpy.random."):]
                if tail == "default_rng" and not node.args and not node.keywords:
                    yield self.finding(
                        module, node,
                        "unseeded numpy.random.default_rng() (seeds itself from OS entropy)",
                    )
                elif tail.split(".", 1)[0] not in _NUMPY_RANDOM_CONSTRUCTORS:
                    yield self.finding(
                        module, node, f"numpy global RNG state {resolved}()"
                    )


# -- DET003: unordered-set iteration --------------------------------------------------

#: callables whose result does not depend on argument iteration order
_ORDER_INSENSITIVE_CONSUMERS = frozenset({
    "sorted", "set", "frozenset", "sum", "min", "max", "any", "all", "len",
    "collections.Counter",
})

_SET_OPS = (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)


def _walk_scope(root: ast.AST):
    """Walk one scope's nodes without descending into nested def/class bodies."""
    stack = list(ast.iter_child_nodes(root))
    while stack:
        node = stack.pop()
        yield node
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)):
            stack.extend(ast.iter_child_nodes(node))


class _FunctionSetScope:
    """Set-typed names visible inside one function (or the module body)."""

    def __init__(self, module: ModuleInfo, func: ast.AST, class_name: str | None) -> None:
        self.module = module
        self.class_name = class_name
        self.set_locals: set[str] = set()
        if isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for arg in (
                *func.args.posonlyargs, *func.args.args, *func.args.kwonlyargs
            ):
                if is_set_annotation(arg.annotation):
                    self.set_locals.add(arg.arg)
        for stmt in _walk_scope(func):
            if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
                if is_set_annotation(stmt.annotation):
                    self.set_locals.add(stmt.target.id)
            elif isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target = stmt.targets[0]
                if isinstance(target, ast.Name) and self.is_set_expr(stmt.value):
                    self.set_locals.add(target.id)

    def is_set_expr(self, expr: ast.AST) -> bool:
        """Best-effort: does this expression statically evaluate to a set?"""
        if isinstance(expr, (ast.Set, ast.SetComp)):
            return True
        if isinstance(expr, ast.Name):
            return expr.id in self.set_locals
        if isinstance(expr, ast.Attribute):
            if isinstance(expr.value, ast.Name) and expr.value.id == "self" and self.class_name:
                info = self.module.classes.get(self.class_name)
                return info is not None and expr.attr in info.set_attrs
            return False
        if isinstance(expr, ast.BinOp) and isinstance(expr.op, _SET_OPS):
            return self.is_set_expr(expr.left) or self.is_set_expr(expr.right)
        if isinstance(expr, ast.Call):
            func = expr.func
            if isinstance(func, ast.Name):
                if func.id in ("set", "frozenset"):
                    return True
                # A module-level function annotated to return a set.
                return func.id in self.module.set_returning_functions
            if isinstance(func, ast.Attribute):
                # some_set.union(...) and friends return sets …
                if func.attr in ("union", "intersection", "difference",
                                 "symmetric_difference", "copy"):
                    return self.is_set_expr(func.value)
                # … and so do self-methods annotated -> set[...].
                if (
                    isinstance(func.value, ast.Name)
                    and func.value.id == "self"
                    and self.class_name
                ):
                    info = self.module.classes.get(self.class_name)
                    return info is not None and func.attr in info.set_returning_methods
        return False


class SetIterationRule(Rule):
    rule_id = "DET003"
    title = "no unordered-set iteration feeding order-sensitive sinks"
    hint = (
        "iterate sorted(the_set) (or keep the result itself order-insensitive: "
        "a set/frozenset comprehension, sum/min/max/any/all)"
    )

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        for scope_node, class_name in _iter_scopes(module.tree):
            scope = _FunctionSetScope(module, scope_node, class_name)
            yield from self._check_scope(module, scope, scope_node)

    def _check_scope(self, module: ModuleInfo, scope: _FunctionSetScope, root: ast.AST):
        for node in _walk_scope(root):
            if isinstance(node, ast.For) and scope.is_set_expr(node.iter):
                yield self.finding(
                    module, node.iter,
                    f"iteration over unordered set {_describe(node.iter)} "
                    "(loop bodies are order-sensitive sinks)",
                )
            elif isinstance(node, (ast.ListComp, ast.GeneratorExp)):
                for comp in node.generators:
                    if not scope.is_set_expr(comp.iter):
                        continue
                    if self._consumer_is_order_insensitive(module, node):
                        continue
                    kind = "list" if isinstance(node, ast.ListComp) else "generator"
                    yield self.finding(
                        module, comp.iter,
                        f"{kind} comprehension over unordered set {_describe(comp.iter)} "
                        "feeds an order-sensitive consumer",
                    )

    def _consumer_is_order_insensitive(self, module: ModuleInfo, node: ast.AST) -> bool:
        parent = module.parents.get(node)
        if not isinstance(parent, ast.Call) or node not in parent.args:
            return False
        resolved = module.resolve(parent.func)
        return resolved in _ORDER_INSENSITIVE_CONSUMERS


def _iter_scopes(tree: ast.Module):
    """Yield (function-or-module, enclosing class name) analysis scopes."""
    yield tree, None

    def walk(node: ast.AST, class_name: str | None):
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield child, class_name
                yield from walk(child, class_name)
            elif isinstance(child, ast.ClassDef):
                yield from walk(child, child.name)
            else:
                yield from walk(child, class_name)

    yield from walk(tree, None)


def _describe(expr: ast.AST) -> str:
    try:
        return repr(ast.unparse(expr))
    except Exception:  # pragma: no cover - unparse failure is cosmetic only
        return "<expression>"


# -- DET005: address-dependent values -------------------------------------------------


class AddressDependenceRule(Rule):
    rule_id = "DET005"
    title = "no id()/hash(object)/address-dependent ordering"
    hint = (
        "CPython id() is a memory address and hash() of str/bytes/object is "
        "salted per process; derive stable keys from content "
        "(hashlib, repro.constructs.state.state_hash) instead"
    )

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                resolved = module.resolve(node.func)
                if resolved == "id" and len(node.args) == 1:
                    yield self.finding(
                        module, node, "id() is a process-dependent memory address"
                    )
                elif resolved == "hash" and len(node.args) == 1:
                    yield self.finding(
                        module, node,
                        "builtin hash() is salted per process (PYTHONHASHSEED)",
                    )
                for keyword in node.keywords:
                    if (
                        keyword.arg == "key"
                        and isinstance(keyword.value, ast.Name)
                        and keyword.value.id == "id"
                    ):
                        yield self.finding(
                            module, keyword.value, "ordering by key=id is address-dependent"
                        )


#: the per-module rules, in report order (DET004 is cross-module, see purity.py)
MODULE_RULES: tuple[Rule, ...] = (
    WallClockRule(),
    AmbientRandomnessRule(),
    SetIterationRule(),
    AddressDependenceRule(),
)
