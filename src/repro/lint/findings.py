"""Finding and pragma data types shared by every lint rule."""

from __future__ import annotations

import re
from dataclasses import dataclass, field, replace

#: JSON output schema version (bump on any incompatible change)
SCHEMA_VERSION = 1

#: inline suppression: ``# det: allow[DET003] reason text`` (reason required)
PRAGMA_PATTERN = re.compile(
    r"#\s*det:\s*allow\[(?P<rules>[A-Z]{3}\d{3}(?:\s*,\s*[A-Z]{3}\d{3})*)\]\s*(?P<reason>.*)"
)


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    hint: str = ""
    suppressed: bool = False
    reason: str = ""

    def suppress(self, reason: str) -> "Finding":
        return replace(self, suppressed=True, reason=reason)

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "hint": self.hint,
            "suppressed": self.suppressed,
            "reason": self.reason,
        }

    def format(self) -> str:
        location = f"{self.path}:{self.line}:{self.col}"
        prefix = "allowed " if self.suppressed else ""
        text = f"{location}: {prefix}{self.rule} {self.message}"
        if self.suppressed and self.reason:
            text += f" (reason: {self.reason})"
        elif self.hint:
            text += f"\n    hint: {self.hint}"
        return text


@dataclass(frozen=True)
class Pragma:
    """A parsed ``# det: allow[...]`` comment on one physical line."""

    line: int
    rules: tuple[str, ...]
    reason: str
    #: rule ids consumed by at least one finding (mutable bookkeeping slot)
    used: set = field(default_factory=set, compare=False)

    @property
    def has_reason(self) -> bool:
        return bool(self.reason.strip())

    def covers(self, rule_id: str) -> bool:
        return rule_id in self.rules


def extract_pragmas(lines: list[str]) -> dict[int, Pragma]:
    """Parse every suppression pragma in ``lines`` (1-based line keys).

    Malformed pragmas (missing reason, unknown rule ids) are still returned —
    the engine reports them as ``DET000`` findings and refuses to let them
    suppress anything.
    """
    pragmas: dict[int, Pragma] = {}
    for index, text in enumerate(lines, start=1):
        match = PRAGMA_PATTERN.search(text)
        if match is None:
            continue
        rules = tuple(
            part.strip() for part in match.group("rules").split(",") if part.strip()
        )
        pragmas[index] = Pragma(line=index, rules=rules, reason=match.group("reason").strip())
    return pragmas
