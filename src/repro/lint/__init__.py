"""Determinism linter: the repo's reproducibility contract as static rules.

``repro lint`` (see :mod:`repro.lint.engine`) walks the package source with
the stdlib :mod:`ast` and enforces five named, suppressible rules — DET001
wall clock, DET002 ambient randomness, DET003 unordered-set iteration,
DET004 pool-boundary kernel purity, DET005 address-dependent values.  Inline
``# det: allow[DET00x] reason`` pragmas (reason mandatory) and the
``lint.toml`` quarantine table are the only ways to silence a finding.

Only :func:`~repro.lint.markers.pure_kernel` is imported eagerly — engine
modules tag their kernels with it, and that import must stay feather-light.
Everything else loads lazily (PEP 562), exactly like :mod:`repro.cluster`.
"""

from repro.lint.markers import is_pure_kernel, pure_kernel

_LAZY = {
    "Finding": ("repro.lint.findings", "Finding"),
    "LintConfig": ("repro.lint.config", "LintConfig"),
    "LintReport": ("repro.lint.engine", "LintReport"),
    "lint_tree": ("repro.lint.engine", "lint_tree"),
    "run_lint": ("repro.lint.engine", "run_lint"),
    "load_config": ("repro.lint.config", "load_config"),
}

__all__ = ["pure_kernel", "is_pure_kernel", *sorted(_LAZY)]


def __getattr__(name: str):
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}") from None
    import importlib

    return getattr(importlib.import_module(module_name), attr)


def __dir__():
    return sorted(set(globals()) | set(_LAZY))
