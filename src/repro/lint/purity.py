"""DET004: transitive purity of pool-boundary kernels.

Functions that cross the :mod:`repro.cluster.parallel` executor boundary run
in worker processes whose results must be a closed-form function of their
pickled inputs — any hidden state (globals, parameter mutation, I/O,
randomness, wall clock) makes ``workers=1`` and ``workers=N`` diverge.  This
pass checks every registered kernel root (config table + every function
decorated ``@pure_kernel``) and follows intra-package calls transitively.

What counts as a violation inside a kernel:

* ``global`` / ``nonlocal`` declarations;
* assigning / aug-assigning / deleting an attribute or subscript rooted in a
  **parameter** (argument mutation) or a **module-level name** (hidden state);
* calling a known mutating method (``append``/``add``/``update``/…) on a
  parameter or module-level root;
* calling an I/O or environment primitive (``open``/``print``/``os.*``/…);
* wall-clock or ambient-randomness calls (delegated sets from DET001/DET002);
* calling another intra-package function that is itself impure — unless every
  one of its violations is pragma-suppressed with a reason, which counts as a
  human having vetted it.

Method calls on non-parameter objects and third-party calls (numpy) are
assumed pure: the pass is a reviewed contract, not a sandbox.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterator

from repro.lint.findings import Finding
from repro.lint.model import ModuleInfo
from repro.lint.rules import _WALL_CLOCK_CALLS

#: container/file methods that mutate their receiver
_MUTATING_METHODS = frozenset({
    "append", "extend", "insert", "add", "update", "pop", "popitem", "clear",
    "remove", "discard", "setdefault", "sort", "reverse",
    "appendleft", "extendleft", "popleft",
    "write", "writelines", "truncate", "flush",
    # numpy in-place surface
    "fill", "resize", "put", "partition", "setfield", "itemset",
})

#: calls that touch the world outside the function's arguments
_IO_CALLS = frozenset({"open", "print", "input", "exec", "eval"})
_IO_PREFIXES = ("os.", "sys.", "shutil.", "subprocess.", "socket.", "logging.")
_RANDOM_PREFIXES = ("random.", "secrets.", "numpy.random.")

HINT = (
    "pure kernels may only compute from their arguments: hoist hidden state "
    "into an argument, return new values instead of mutating, or vet the "
    "line with '# det: allow[DET004] <reason>'"
)


@dataclass
class _Violation:
    module: ModuleInfo
    node: ast.AST
    message: str

    @property
    def suppressed(self) -> bool:
        line = getattr(self.node, "lineno", 1)
        pragma = self.module.pragmas.get(line)
        if pragma is None or not pragma.covers("DET004") or not pragma.has_reason:
            return False
        return True


class PurityChecker:
    """Whole-package DET004 pass over the modules the engine parsed."""

    rule_id = "DET004"
    title = "pool-boundary kernels must be pure, transitively"

    def __init__(self, modules: dict[str, ModuleInfo], kernel_roots: tuple[str, ...]) -> None:
        self.modules = modules
        self.kernel_roots = kernel_roots
        #: qualified function name -> list of violations (memo across roots)
        self._memo: dict[str, list[_Violation]] = {}
        self._in_progress: set[str] = set()

    # -- root discovery ---------------------------------------------------------------

    def _decorated_kernels(self) -> Iterator[tuple[ModuleInfo, ast.FunctionDef]]:
        for module in self.modules.values():
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.FunctionDef):
                    continue
                for decorator in node.decorator_list:
                    name = module.resolve(decorator)
                    if name and name.rsplit(".", 1)[-1] == "pure_kernel":
                        yield module, node
                        break

    def _resolve_root(self, qualified: str) -> tuple[ModuleInfo, ast.FunctionDef] | None:
        module_name, _, func_name = qualified.rpartition(".")
        module = self.modules.get(module_name)
        if module is None:
            return None
        func = module.functions.get(func_name)
        if func is None:
            return None
        return module, func

    # -- the pass ---------------------------------------------------------------------

    def check(self) -> Iterator[Finding]:
        seen: set[tuple[str, str]] = set()
        roots: list[tuple[ModuleInfo, ast.FunctionDef]] = []
        for qualified in self.kernel_roots:
            resolved = self._resolve_root(qualified)
            if resolved is not None:
                roots.append(resolved)
        roots.extend(self._decorated_kernels())
        for module, func in roots:
            for violation in self._function_violations(module, func):
                key = (
                    violation.module.rel_path,
                    f"{getattr(violation.node, 'lineno', 1)}:{violation.message}",
                )
                if key in seen:
                    continue
                seen.add(key)
                yield Finding(
                    rule=self.rule_id,
                    path=violation.module.rel_path,
                    line=getattr(violation.node, "lineno", 1),
                    col=getattr(violation.node, "col_offset", 0) + 1,
                    message=violation.message,
                    hint=HINT,
                )

    def _function_violations(self, module: ModuleInfo, func: ast.FunctionDef) -> list[_Violation]:
        qualified = f"{module.module_name}.{func.name}"
        if qualified in self._memo:
            return self._memo[qualified]
        if qualified in self._in_progress:
            return []  # recursion cycle: optimistically pure, the caller reports
        self._in_progress.add(qualified)
        try:
            violations = list(self._collect(module, func))
        finally:
            self._in_progress.discard(qualified)
        self._memo[qualified] = violations
        return violations

    def _collect(self, module: ModuleInfo, func: ast.FunctionDef) -> Iterator[_Violation]:
        args = func.args
        params = {
            arg.arg
            for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs)
        }
        if args.vararg:
            params.add(args.vararg.arg)
        if args.kwarg:
            params.add(args.kwarg.arg)
        kernel_name = func.name

        for node in ast.walk(func):
            if isinstance(node, (ast.Global, ast.Nonlocal)):
                kind = "global" if isinstance(node, ast.Global) else "nonlocal"
                yield _Violation(
                    module, node,
                    f"kernel {kernel_name} declares {kind} {', '.join(node.names)}",
                )
            elif isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign, ast.Delete)):
                yield from self._check_store(module, node, params, kernel_name)
            elif isinstance(node, ast.Call):
                yield from self._check_call(module, node, params, kernel_name)

    def _targets(self, node: ast.AST) -> list[ast.AST]:
        if isinstance(node, ast.Assign):
            return list(node.targets)
        if isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            return [node.target]
        if isinstance(node, ast.Delete):
            return list(node.targets)
        return []

    def _check_store(self, module, node, params, kernel_name) -> Iterator[_Violation]:
        for target in self._targets(node):
            queue = [target]
            while queue:
                item = queue.pop()
                if isinstance(item, (ast.Tuple, ast.List)):
                    queue.extend(item.elts)
                    continue
                if isinstance(item, ast.Starred):
                    queue.append(item.value)
                    continue
                if not isinstance(item, (ast.Attribute, ast.Subscript)):
                    continue  # plain Name stores create locals: pure
                root = _root_name(item)
                if root is None:
                    continue
                what = "attribute" if isinstance(item, ast.Attribute) else "element"
                if root in params:
                    yield _Violation(
                        module, node,
                        f"kernel {kernel_name} writes {what} of parameter {root!r}",
                    )
                elif root in module.global_names:
                    yield _Violation(
                        module, node,
                        f"kernel {kernel_name} writes {what} of module-level state {root!r}",
                    )

    def _check_call(self, module, node, params, kernel_name) -> Iterator[_Violation]:
        func = node.func
        resolved = module.resolve(func)
        if isinstance(func, ast.Attribute) and func.attr in _MUTATING_METHODS:
            root = _root_name(func)
            if root in params:
                yield _Violation(
                    module, node,
                    f"kernel {kernel_name} mutates parameter {root!r} via .{func.attr}()",
                )
                return
            if root is not None and root in module.global_names:
                yield _Violation(
                    module, node,
                    f"kernel {kernel_name} mutates module-level state {root!r} via .{func.attr}()",
                )
                return
        if resolved is None:
            return
        if resolved in _IO_CALLS or resolved.startswith(_IO_PREFIXES):
            yield _Violation(
                module, node, f"kernel {kernel_name} performs I/O: {resolved}()"
            )
        elif resolved in _WALL_CLOCK_CALLS:
            yield _Violation(
                module, node, f"kernel {kernel_name} reads the wall clock: {resolved}()"
            )
        elif resolved.startswith(_RANDOM_PREFIXES):
            yield _Violation(
                module, node, f"kernel {kernel_name} draws ambient randomness: {resolved}()"
            )
        elif resolved.startswith("repro.") or resolved.rsplit(".", 1)[0] == module.module_name:
            yield from self._check_transitive_call(module, node, resolved, kernel_name)
        elif "." not in resolved and resolved in module.functions:
            qualified = f"{module.module_name}.{resolved}"
            yield from self._check_transitive_call(module, node, qualified, kernel_name)

    def _check_transitive_call(self, module, node, qualified, kernel_name) -> Iterator[_Violation]:
        target = self._resolve_root(qualified)
        if target is None:
            return
        callee_module, callee = target
        callee_violations = self._function_violations(callee_module, callee)
        unsuppressed = [v for v in callee_violations if not v.suppressed]
        if unsuppressed:
            first = unsuppressed[0]
            yield _Violation(
                module, node,
                f"kernel {kernel_name} calls impure {qualified} ({first.message})",
            )


def _root_name(node: ast.AST) -> str | None:
    """Peel an Attribute/Subscript chain down to its base name."""
    current = node
    while isinstance(current, (ast.Attribute, ast.Subscript)):
        current = current.value
    if isinstance(current, ast.Name):
        return current.id
    return None
