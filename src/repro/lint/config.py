"""Lint configuration: per-rule path allowlists and registered kernel roots.

The defaults below are the repo's determinism contract in table form.  A
``lint.toml`` next to the source tree (searched upward from the linted
package) can extend them, so the quarantine is version-controlled alongside
the code it exempts::

    [lint.allow]
    # package-relative fnmatch globs, forward slashes
    DET001 = ["obs/profiling.py"]

    [lint.kernels]
    roots = ["repro.cluster.parallel._generate_chunk_task"]
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fnmatch import fnmatch
from pathlib import Path

#: files allowed to break a rule wholesale, keyed by rule id.
#: DET001: obs/profiling.py is *the* wall-clock quarantine — everything it
#: measures is exported under its own ``wallProfile`` key and never feeds a
#: virtual result or determinism hash.
DEFAULT_ALLOWLIST: dict[str, tuple[str, ...]] = {
    "DET001": ("obs/profiling.py",),
}

#: functions that cross the process-pool boundary of
#: :mod:`repro.cluster.parallel` and therefore must satisfy DET004 even
#: without a ``@pure_kernel`` decorator (the decorator is preferred; this
#: table exists so un-importable or third-party-registered entry points can
#: still be pinned by qualified name).
DEFAULT_KERNEL_ROOTS: tuple[str, ...] = (
    "repro.constructs.batched.advance_states",
    "repro.cluster.parallel._generate_chunk_task",
    "repro.cluster.parallel._advance_batch_task",
)

CONFIG_FILENAME = "lint.toml"


@dataclass(frozen=True)
class LintConfig:
    """Resolved lint configuration (defaults merged with an optional file)."""

    allowlist: dict[str, tuple[str, ...]] = field(
        default_factory=lambda: dict(DEFAULT_ALLOWLIST)
    )
    kernel_roots: tuple[str, ...] = DEFAULT_KERNEL_ROOTS
    source: str = "<defaults>"

    def is_path_allowed(self, rule_id: str, rel_path: str) -> bool:
        """True when ``rel_path`` (package-relative, posix) is quarantined for ``rule_id``."""
        return any(fnmatch(rel_path, pattern) for pattern in self.allowlist.get(rule_id, ()))


def _parse_toml(path: Path) -> dict:
    import tomllib

    with open(path, "rb") as handle:
        return tomllib.load(handle)


def load_config(explicit_path: Path | None = None, search_from: Path | None = None) -> LintConfig:
    """Load ``lint.toml`` (explicit, or searched upward from ``search_from``).

    Returns the pure defaults when no file exists.  File entries *extend*
    the defaults — the in-package table is the contract's floor, not a
    suggestion.
    """
    path: Path | None = None
    if explicit_path is not None:
        path = Path(explicit_path)
        if not path.is_file():
            raise FileNotFoundError(f"lint config not found: {path}")
    elif search_from is not None:
        for candidate_dir in (Path(search_from), *Path(search_from).parents):
            candidate = candidate_dir / CONFIG_FILENAME
            if candidate.is_file():
                path = candidate
                break
    if path is None:
        return LintConfig()

    data = _parse_toml(path).get("lint", {})
    if not isinstance(data, dict):
        raise ValueError(f"{path}: [lint] must be a table")
    allowlist = {rule: list(patterns) for rule, patterns in DEFAULT_ALLOWLIST.items()}
    for rule, patterns in (data.get("allow") or {}).items():
        if not isinstance(patterns, list) or not all(isinstance(p, str) for p in patterns):
            raise ValueError(f"{path}: lint.allow.{rule} must be a list of path globs")
        allowlist.setdefault(str(rule), [])
        allowlist[str(rule)].extend(patterns)
    kernels = data.get("kernels") or {}
    roots = list(DEFAULT_KERNEL_ROOTS)
    for name in kernels.get("roots", ()):
        if not isinstance(name, str):
            raise ValueError(f"{path}: lint.kernels.roots must be a list of qualified names")
        if name not in roots:
            roots.append(name)
    return LintConfig(
        allowlist={rule: tuple(patterns) for rule, patterns in allowlist.items()},
        kernel_roots=tuple(roots),
        source=str(path),
    )
