"""The per-module analysis model every lint rule works from.

One :class:`ModuleInfo` per source file: the parsed AST, an import-alias
table for resolving dotted call targets, the module's top-level names and
functions, per-class tables of set-typed attributes and set-returning
methods, and the file's suppression pragmas.  Everything here is built with
the stdlib :mod:`ast` only — the linter never imports the code it analyses.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

from repro.lint.findings import Pragma, extract_pragmas

#: annotation heads that denote an unordered set type
_SET_ANNOTATION_NAMES = {"set", "frozenset", "Set", "FrozenSet", "AbstractSet", "MutableSet"}

#: set methods that return another set
_SET_PRODUCING_METHODS = {
    "union", "intersection", "difference", "symmetric_difference", "copy",
}


@dataclass
class ClassInfo:
    """Set-typing facts about one class body."""

    name: str
    #: attribute names assigned or annotated as set/frozenset anywhere in the class
    set_attrs: set[str] = field(default_factory=set)
    #: method names whose return annotation is a set type
    set_returning_methods: set[str] = field(default_factory=set)


@dataclass
class ModuleInfo:
    """Everything the rules need to know about one parsed source file."""

    path: Path
    rel_path: str  # package-relative posix path, e.g. "server/chunkmanager.py"
    module_name: str  # dotted module name, e.g. "repro.server.chunkmanager"
    source: str
    lines: list[str]
    tree: ast.Module
    aliases: dict[str, str] = field(default_factory=dict)
    global_names: set[str] = field(default_factory=set)
    functions: dict[str, ast.FunctionDef] = field(default_factory=dict)
    set_returning_functions: set[str] = field(default_factory=set)
    classes: dict[str, ClassInfo] = field(default_factory=dict)
    pragmas: dict[int, Pragma] = field(default_factory=dict)
    parents: dict[ast.AST, ast.AST] = field(default_factory=dict)

    def resolve(self, node: ast.AST) -> str | None:
        """Resolve a Name/Attribute chain to a dotted name through the imports.

        ``np.random.default_rng`` resolves to ``numpy.random.default_rng``;
        un-imported bare names resolve to themselves (builtins), and anything
        rooted in a non-name expression resolves to ``None``.
        """
        parts: list[str] = []
        current = node
        while isinstance(current, ast.Attribute):
            parts.append(current.attr)
            current = current.value
        if not isinstance(current, ast.Name):
            return None
        root = self.aliases.get(current.id, current.id)
        parts.append(root)
        return ".".join(reversed(parts))


def is_set_annotation(annotation: ast.AST | None) -> bool:
    """True for ``set[...]``, ``frozenset``, ``typing.Set[...]`` and friends."""
    if annotation is None:
        return False
    head = annotation
    if isinstance(head, ast.Subscript):
        head = head.value
    if isinstance(head, ast.Attribute):
        return head.attr in _SET_ANNOTATION_NAMES
    if isinstance(head, ast.Name):
        return head.id in _SET_ANNOTATION_NAMES
    if isinstance(head, ast.Constant) and isinstance(head.value, str):
        # String annotations: a shallow textual check is enough here.
        text = head.value.split("[", 1)[0].strip()
        return text.rsplit(".", 1)[-1] in _SET_ANNOTATION_NAMES
    return False


def _collect_aliases(tree: ast.Module) -> dict[str, str]:
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for item in node.names:
                aliases[item.asname or item.name.split(".", 1)[0]] = (
                    item.name if item.asname else item.name.split(".", 1)[0]
                )
                if item.asname:
                    aliases[item.asname] = item.name
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for item in node.names:
                if item.name == "*":
                    continue
                aliases[item.asname or item.name] = f"{node.module}.{item.name}"
    return aliases


def _collect_class_info(node: ast.ClassDef) -> ClassInfo:
    info = ClassInfo(name=node.name)
    for child in node.body:
        if isinstance(child, ast.AnnAssign) and isinstance(child.target, ast.Name):
            if is_set_annotation(child.annotation):
                info.set_attrs.add(child.target.id)
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if is_set_annotation(child.returns):
                info.set_returning_methods.add(child.name)
            for stmt in ast.walk(child):
                target = None
                if isinstance(stmt, ast.AnnAssign) and is_set_annotation(stmt.annotation):
                    target = stmt.target
                elif isinstance(stmt, ast.Assign) and _is_set_literalish(stmt.value):
                    if len(stmt.targets) == 1:
                        target = stmt.targets[0]
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    info.set_attrs.add(target.attr)
    return info


def _is_set_literalish(expr: ast.AST) -> bool:
    """Shallow: is this expression unambiguously a set, with no context needed?"""
    if isinstance(expr, (ast.Set, ast.SetComp)):
        return True
    if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Name):
        return expr.func.id in ("set", "frozenset")
    return False


def build_module_info(path: Path, rel_path: str, module_name: str, source: str) -> ModuleInfo:
    tree = ast.parse(source, filename=str(path))
    lines = source.splitlines()
    info = ModuleInfo(
        path=path,
        rel_path=rel_path,
        module_name=module_name,
        source=source,
        lines=lines,
        tree=tree,
        aliases=_collect_aliases(tree),
        pragmas=extract_pragmas(lines),
    )
    for node in tree.body:
        if isinstance(node, ast.FunctionDef):
            info.functions[node.name] = node
            if is_set_annotation(node.returns):
                info.set_returning_functions.add(node.name)
        elif isinstance(node, ast.ClassDef):
            info.classes[node.name] = _collect_class_info(node)
            info.global_names.add(node.name)
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    info.global_names.add(target.id)
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            info.global_names.add(node.target.id)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            info.global_names.add(node.name)
    for parent in ast.walk(tree):
        for child in ast.iter_child_nodes(parent):
            info.parents[child] = parent
    return info
