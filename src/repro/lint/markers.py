"""Source-level markers the determinism linter recognises.

This module is deliberately tiny and dependency-free: engine modules import
it to tag functions, and pulling a marker in must never drag the analysis
machinery (or anything else) into a hot import path or a worker process.
"""

from __future__ import annotations

from typing import Callable, TypeVar

F = TypeVar("F", bound=Callable)


def pure_kernel(func: F) -> F:
    """Mark ``func`` as a pure kernel eligible to cross a process-pool boundary.

    A pure kernel must be a closed-form function of its arguments: no writes
    to globals or closures, no mutation of its parameters, no I/O, no
    randomness and no wall-clock reads — transitively, through every
    intra-package call.  The marker itself changes nothing at runtime; it
    registers the function with the ``DET004`` rule of :mod:`repro.lint`,
    which statically enforces that contract on every lint run.
    """
    func.__pure_kernel__ = True
    return func


def is_pure_kernel(func: Callable) -> bool:
    """True when ``func`` carries the :func:`pure_kernel` marker."""
    return bool(getattr(func, "__pure_kernel__", False))
