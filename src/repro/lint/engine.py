"""Lint engine: file discovery, pragma/quarantine application, output.

:func:`lint_tree` is the programmatic surface (the pytest gate and the test
fixtures call it directly); :func:`run_lint` backs the ``repro lint`` CLI
subcommand with text and JSON formats and a CI-friendly exit code.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.lint.config import LintConfig, load_config
from repro.lint.findings import SCHEMA_VERSION, Finding
from repro.lint.model import ModuleInfo, build_module_info
from repro.lint.purity import HINT as DET004_HINT
from repro.lint.purity import PurityChecker
from repro.lint.rules import MODULE_RULES

#: rule id used for lint-infrastructure problems (malformed pragmas, parse
#: errors) — never suppressible, by construction
META_RULE = "DET000"

#: every rule id the pragma parser accepts
KNOWN_RULES = ("DET001", "DET002", "DET003", "DET004", "DET005")

RULE_TABLE: dict[str, dict[str, str]] = {
    META_RULE: {
        "title": "lint infrastructure (malformed pragma, unparsable file)",
        "hint": "pragmas are '# det: allow[DET00x] <reason>'; the reason is mandatory",
    },
    **{
        rule.rule_id: {"title": rule.title, "hint": rule.hint}
        for rule in MODULE_RULES
    },
    "DET004": {
        "title": "pool-boundary kernels must be pure, transitively",
        "hint": DET004_HINT,
    },
}


@dataclass
class LintReport:
    """Every finding of one lint run, suppressed ones included."""

    target: str
    config_source: str
    files: int = 0
    findings: list[Finding] = field(default_factory=list)

    @property
    def unsuppressed(self) -> list[Finding]:
        return [finding for finding in self.findings if not finding.suppressed]

    @property
    def suppressed(self) -> list[Finding]:
        return [finding for finding in self.findings if finding.suppressed]

    @property
    def clean(self) -> bool:
        return not self.unsuppressed

    def to_dict(self) -> dict:
        counts: dict[str, int] = {}
        for finding in self.unsuppressed:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return {
            "version": SCHEMA_VERSION,
            "target": self.target,
            "config": self.config_source,
            "rules": {rule_id: dict(meta) for rule_id, meta in sorted(RULE_TABLE.items())},
            "findings": [finding.to_dict() for finding in self.findings],
            "summary": {
                "files": self.files,
                "findings": len(self.unsuppressed),
                "suppressed": len(self.suppressed),
                "by_rule": counts,
                "clean": self.clean,
            },
        }

    def format_text(self, show_suppressed: bool = False) -> str:
        lines = []
        for finding in self.findings:
            if finding.suppressed and not show_suppressed:
                continue
            lines.append(finding.format())
        lines.append(
            f"{len(self.unsuppressed)} finding(s), {len(self.suppressed)} suppressed, "
            f"{self.files} file(s) checked"
        )
        if self.clean:
            lines.append("determinism contract: CLEAN")
        return "\n".join(lines)


def _sort_key(finding: Finding) -> tuple:
    return (finding.path, finding.line, finding.col, finding.rule, finding.message)


def _pragma_problems(module: ModuleInfo) -> list[Finding]:
    problems = []
    for pragma in module.pragmas.values():
        unknown = [rule for rule in pragma.rules if rule not in KNOWN_RULES]
        if unknown:
            problems.append(Finding(
                rule=META_RULE, path=module.rel_path, line=pragma.line, col=1,
                message=f"pragma names unknown rule id(s) {', '.join(unknown)}",
                hint=RULE_TABLE[META_RULE]["hint"],
            ))
        if not pragma.has_reason:
            problems.append(Finding(
                rule=META_RULE, path=module.rel_path, line=pragma.line, col=1,
                message="suppression pragma is missing its mandatory reason",
                hint=RULE_TABLE[META_RULE]["hint"],
            ))
    return problems


def _apply_suppressions(finding: Finding, module: ModuleInfo, config: LintConfig) -> Finding:
    if config.is_path_allowed(finding.rule, finding.path):
        return finding.suppress(f"allowlisted for {finding.rule} in {config.source}")
    pragma = module.pragmas.get(finding.line)
    if pragma is not None and pragma.covers(finding.rule) and pragma.has_reason:
        pragma.used.add(finding.rule)
        return finding.suppress(pragma.reason)
    return finding


def lint_tree(
    package_dir: Path | str,
    config: LintConfig | None = None,
    package_name: str = "repro",
) -> LintReport:
    """Lint every ``*.py`` under ``package_dir`` (a package source root)."""
    package_dir = Path(package_dir)
    if config is None:
        config = load_config(search_from=package_dir)
    report = LintReport(target=str(package_dir), config_source=config.source)

    modules: dict[str, ModuleInfo] = {}
    findings: list[Finding] = []
    for path in sorted(package_dir.rglob("*.py")):
        rel = path.relative_to(package_dir).as_posix()
        dotted = rel[: -len(".py")].replace("/", ".")
        if dotted.endswith("__init__"):
            dotted = dotted[: -len(".__init__")] if "." in dotted else ""
        module_name = f"{package_name}.{dotted}" if dotted else package_name
        report.files += 1
        try:
            source = path.read_text(encoding="utf-8")
            module = build_module_info(path, rel, module_name, source)
        except (SyntaxError, UnicodeDecodeError) as error:
            findings.append(Finding(
                rule=META_RULE, path=rel,
                line=getattr(error, "lineno", 1) or 1, col=1,
                message=f"file does not parse: {error.msg if isinstance(error, SyntaxError) else error}",
                hint="the linter cannot vouch for a file it cannot read",
            ))
            continue
        modules[module_name] = module
        findings.extend(_pragma_problems(module))
        for rule in MODULE_RULES:
            for finding in rule.check(module):
                findings.append(_apply_suppressions(finding, module, config))

    purity = PurityChecker(modules, config.kernel_roots)
    by_rel = {module.rel_path: module for module in modules.values()}
    for finding in purity.check():
        findings.append(_apply_suppressions(finding, by_rel[finding.path], config))

    report.findings = sorted(findings, key=_sort_key)
    return report


def run_lint(
    paths: list[str] | None = None,
    output_format: str = "text",
    config_path: str | None = None,
    show_suppressed: bool = False,
    out=None,
) -> int:
    """CLI driver: lint the package (or explicit paths), print, return exit code.

    Exit codes: 0 clean, 1 unsuppressed findings, 2 usage/config error.
    """
    import sys

    out = out or sys.stdout
    if paths:
        targets = [Path(raw) for raw in paths]
    else:
        import repro

        targets = [Path(repro.__file__).parent]
    reports = []
    for target in targets:
        if not target.exists():
            print(f"error: no such path: {target}", file=sys.stderr)
            return 2
        config = load_config(
            explicit_path=Path(config_path) if config_path else None,
            search_from=target.resolve(),
        )
        reports.append(lint_tree(target, config=config))

    if len(reports) == 1:
        merged = reports[0]
    else:
        merged = LintReport(
            target=", ".join(report.target for report in reports),
            config_source=reports[0].config_source,
            files=sum(report.files for report in reports),
        )
        merged.findings = sorted(
            (finding for report in reports for finding in report.findings),
            key=_sort_key,
        )

    if output_format == "json":
        json.dump(merged.to_dict(), out, indent=2, sort_keys=True)
        out.write("\n")
    else:
        out.write(merged.format_text(show_suppressed=show_suppressed) + "\n")
    return 0 if merged.clean else 1
