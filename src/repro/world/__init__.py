"""Voxel world substrate.

Provides the Minecraft-like world model the game server and Servo operate on:
block types, block/chunk coordinates, 16x16x256 chunks, the world container,
deterministic procedural terrain generation (default and flat world types) and
chunk serialization used by the storage layer.
"""

from repro.world.block import BlockType, is_stateful
from repro.world.chunk import CHUNK_HEIGHT, CHUNK_SIZE, Chunk
from repro.world.coords import BlockPos, ChunkPos, block_to_chunk, chunk_origin
from repro.world.noise import LayeredNoise, ValueNoise2D
from repro.world.serialization import chunk_from_bytes, chunk_to_bytes
from repro.world.terrain import (
    DefaultTerrainGenerator,
    FlatTerrainGenerator,
    TerrainGenerator,
    make_terrain_generator,
)
from repro.world.world import VoxelWorld

__all__ = [
    "BlockType",
    "is_stateful",
    "Chunk",
    "CHUNK_SIZE",
    "CHUNK_HEIGHT",
    "BlockPos",
    "ChunkPos",
    "block_to_chunk",
    "chunk_origin",
    "ValueNoise2D",
    "LayeredNoise",
    "TerrainGenerator",
    "DefaultTerrainGenerator",
    "FlatTerrainGenerator",
    "make_terrain_generator",
    "VoxelWorld",
    "chunk_to_bytes",
    "chunk_from_bytes",
]
