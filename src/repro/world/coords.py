"""Block and chunk coordinates.

The world uses Minecraft's conventions: blocks are addressed by integer
``(x, y, z)`` positions where ``y`` is the vertical axis; chunks are 16x16
columns addressed by ``(cx, cz)``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache

CHUNK_SIZE = 16


@dataclass(frozen=True, order=True)
class BlockPos:
    """An integer block position."""

    x: int
    y: int
    z: int

    def offset(self, dx: int = 0, dy: int = 0, dz: int = 0) -> "BlockPos":
        return BlockPos(self.x + dx, self.y + dy, self.z + dz)

    def neighbours(self) -> list["BlockPos"]:
        """The six axis-aligned neighbours."""
        return [
            self.offset(dx=1),
            self.offset(dx=-1),
            self.offset(dy=1),
            self.offset(dy=-1),
            self.offset(dz=1),
            self.offset(dz=-1),
        ]

    def horizontal_distance_to(self, other: "BlockPos") -> float:
        """Euclidean distance ignoring the vertical axis (used for view range)."""
        return math.hypot(self.x - other.x, self.z - other.z)

    def manhattan_distance_to(self, other: "BlockPos") -> int:
        return abs(self.x - other.x) + abs(self.y - other.y) + abs(self.z - other.z)


@dataclass(frozen=True, order=True)
class ChunkPos:
    """A chunk column position (16x16 blocks horizontally)."""

    cx: int
    cz: int

    def neighbours(self, radius: int = 1) -> list["ChunkPos"]:
        """All chunk positions within a square ``radius`` (excluding self)."""
        out = []
        for dx in range(-radius, radius + 1):
            for dz in range(-radius, radius + 1):
                if dx == 0 and dz == 0:
                    continue
                out.append(ChunkPos(self.cx + dx, self.cz + dz))
        return out

    def distance_to(self, other: "ChunkPos") -> float:
        return math.hypot(self.cx - other.cx, self.cz - other.cz)

    def key(self) -> str:
        """A stable string key used as a storage object name."""
        return f"chunk_{self.cx}_{self.cz}"


def block_to_chunk(pos: BlockPos) -> ChunkPos:
    """The chunk containing a block position."""
    return ChunkPos(pos.x // CHUNK_SIZE, pos.z // CHUNK_SIZE)


def chunk_origin(pos: ChunkPos) -> BlockPos:
    """The minimum-corner block position of a chunk."""
    return BlockPos(pos.cx * CHUNK_SIZE, 0, pos.cz * CHUNK_SIZE)


@lru_cache(maxsize=2048)
def chunk_offsets_within_blocks(
    offset_x: int, offset_z: int, radius_blocks: float
) -> tuple[tuple[int, int], ...]:
    """Chunk offsets within ``radius_blocks`` of an intra-chunk center offset.

    The chunk grid is uniform, so the set of chunks within a radius of a
    block depends only on the block's offset *inside* its own chunk
    (``x % 16``, ``z % 16``) — not on where in the world the chunk sits.
    This translation-invariant core is memoised: callers that sweep many
    avatar positions (the prefetch planner runs per avatar, several times a
    second of virtual time) reduce the O(radius²) nearest-edge scan to a
    cache lookup plus a translation.
    """
    if radius_blocks < 0:
        raise ValueError("radius_blocks must be non-negative")
    chunk_radius = int(math.ceil(radius_blocks / CHUNK_SIZE)) + 1
    result = []
    for dx in range(-chunk_radius, chunk_radius + 1):
        for dz in range(-chunk_radius, chunk_radius + 1):
            origin_x = dx * CHUNK_SIZE
            origin_z = dz * CHUNK_SIZE
            # Nearest point of the chunk's footprint to the center.
            nearest_x = min(max(offset_x, origin_x), origin_x + CHUNK_SIZE - 1)
            nearest_z = min(max(offset_z, origin_z), origin_z + CHUNK_SIZE - 1)
            if math.hypot(offset_x - nearest_x, offset_z - nearest_z) <= radius_blocks:
                result.append((dx, dz))
    return tuple(result)


def chunks_within_blocks(center: BlockPos, radius_blocks: float) -> list[ChunkPos]:
    """All chunk positions whose nearest edge lies within ``radius_blocks`` of ``center``.

    Used by the chunk manager to decide which chunks must be loaded for a
    player's view distance, and by the prefetcher for its slightly larger ring.
    """
    center_chunk = block_to_chunk(center)
    offsets = chunk_offsets_within_blocks(
        center.x % CHUNK_SIZE, center.z % CHUNK_SIZE, float(radius_blocks)
    )
    return [
        ChunkPos(center_chunk.cx + dx, center_chunk.cz + dz) for dx, dz in offsets
    ]
