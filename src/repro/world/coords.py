"""Block and chunk coordinates.

The world uses Minecraft's conventions: blocks are addressed by integer
``(x, y, z)`` positions where ``y`` is the vertical axis; chunks are 16x16
columns addressed by ``(cx, cz)``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

CHUNK_SIZE = 16


@dataclass(frozen=True, order=True)
class BlockPos:
    """An integer block position."""

    x: int
    y: int
    z: int

    def offset(self, dx: int = 0, dy: int = 0, dz: int = 0) -> "BlockPos":
        return BlockPos(self.x + dx, self.y + dy, self.z + dz)

    def neighbours(self) -> list["BlockPos"]:
        """The six axis-aligned neighbours."""
        return [
            self.offset(dx=1),
            self.offset(dx=-1),
            self.offset(dy=1),
            self.offset(dy=-1),
            self.offset(dz=1),
            self.offset(dz=-1),
        ]

    def horizontal_distance_to(self, other: "BlockPos") -> float:
        """Euclidean distance ignoring the vertical axis (used for view range)."""
        return math.hypot(self.x - other.x, self.z - other.z)

    def manhattan_distance_to(self, other: "BlockPos") -> int:
        return abs(self.x - other.x) + abs(self.y - other.y) + abs(self.z - other.z)


@dataclass(frozen=True, order=True)
class ChunkPos:
    """A chunk column position (16x16 blocks horizontally)."""

    cx: int
    cz: int

    def neighbours(self, radius: int = 1) -> list["ChunkPos"]:
        """All chunk positions within a square ``radius`` (excluding self)."""
        out = []
        for dx in range(-radius, radius + 1):
            for dz in range(-radius, radius + 1):
                if dx == 0 and dz == 0:
                    continue
                out.append(ChunkPos(self.cx + dx, self.cz + dz))
        return out

    def distance_to(self, other: "ChunkPos") -> float:
        return math.hypot(self.cx - other.cx, self.cz - other.cz)

    def key(self) -> str:
        """A stable string key used as a storage object name."""
        return f"chunk_{self.cx}_{self.cz}"


def block_to_chunk(pos: BlockPos) -> ChunkPos:
    """The chunk containing a block position."""
    return ChunkPos(pos.x // CHUNK_SIZE, pos.z // CHUNK_SIZE)


def chunk_origin(pos: ChunkPos) -> BlockPos:
    """The minimum-corner block position of a chunk."""
    return BlockPos(pos.cx * CHUNK_SIZE, 0, pos.cz * CHUNK_SIZE)


def chunks_within_blocks(center: BlockPos, radius_blocks: float) -> list[ChunkPos]:
    """All chunk positions whose nearest edge lies within ``radius_blocks`` of ``center``.

    Used by the chunk manager to decide which chunks must be loaded for a
    player's view distance, and by the prefetcher for its slightly larger ring.
    """
    if radius_blocks < 0:
        raise ValueError("radius_blocks must be non-negative")
    center_chunk = block_to_chunk(center)
    chunk_radius = int(math.ceil(radius_blocks / CHUNK_SIZE)) + 1
    result = []
    for dx in range(-chunk_radius, chunk_radius + 1):
        for dz in range(-chunk_radius, chunk_radius + 1):
            candidate = ChunkPos(center_chunk.cx + dx, center_chunk.cz + dz)
            origin = chunk_origin(candidate)
            # Nearest point of the chunk's footprint to the center.
            nearest_x = min(max(center.x, origin.x), origin.x + CHUNK_SIZE - 1)
            nearest_z = min(max(center.z, origin.z), origin.z + CHUNK_SIZE - 1)
            if math.hypot(center.x - nearest_x, center.z - nearest_z) <= radius_blocks:
                result.append(candidate)
    return result
