"""Deterministic 2D value noise for procedural terrain generation.

A light-weight substitute for the Perlin/simplex noise used by Minecraft-like
terrain generators: seeded lattice value noise with smooth interpolation,
composed into octaves by :class:`LayeredNoise`.  Fully deterministic for a
given seed, so generated chunks are identical whether they are produced by the
local generator or inside a (simulated) serverless function.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def _lattice_value(seed: int, ix: np.ndarray, iz: np.ndarray) -> np.ndarray:
    """Pseudo-random value in [0, 1) for integer lattice points.

    Uses a 64-bit integer hash so the value depends only on (seed, ix, iz).
    The seed term is reduced modulo 2^63 in Python-int space to avoid numpy's
    scalar-overflow warnings; overflow in the array arithmetic wraps, which is
    exactly what an integer hash wants.
    """
    seed_term = np.int64((int(seed) * 1442695040888963407) % (2 ** 62))
    with np.errstate(over="ignore"):
        h = (ix.astype(np.int64) * np.int64(374761393)
             + iz.astype(np.int64) * np.int64(668265263)
             + seed_term)
        h = (h ^ (h >> 13)) * np.int64(1274126177)
        h = h ^ (h >> 16)
    return (h & np.int64(0x7FFFFFFF)).astype(np.float64) / float(0x7FFFFFFF)


def _smoothstep(t: np.ndarray) -> np.ndarray:
    return t * t * (3.0 - 2.0 * t)


@dataclass(frozen=True)
class ValueNoise2D:
    """Smooth 2D value noise with values in [0, 1)."""

    seed: int
    scale: float = 32.0

    def sample(self, x: np.ndarray | float, z: np.ndarray | float) -> np.ndarray:
        """Sample noise at world coordinates (x, z); accepts scalars or arrays."""
        x_arr = np.asarray(x, dtype=np.float64) / self.scale
        z_arr = np.asarray(z, dtype=np.float64) / self.scale
        x0 = np.floor(x_arr).astype(np.int64)
        z0 = np.floor(z_arr).astype(np.int64)
        tx = _smoothstep(x_arr - x0)
        tz = _smoothstep(z_arr - z0)
        v00 = _lattice_value(self.seed, x0, z0)
        v10 = _lattice_value(self.seed, x0 + 1, z0)
        v01 = _lattice_value(self.seed, x0, z0 + 1)
        v11 = _lattice_value(self.seed, x0 + 1, z0 + 1)
        top = v00 * (1 - tx) + v10 * tx
        bottom = v01 * (1 - tx) + v11 * tx
        return top * (1 - tz) + bottom * tz


@dataclass(frozen=True)
class LayeredNoise:
    """Octave composition of :class:`ValueNoise2D` (fractal Brownian motion)."""

    seed: int
    octaves: int = 4
    base_scale: float = 64.0
    persistence: float = 0.5
    lacunarity: float = 2.0

    def sample(self, x: np.ndarray | float, z: np.ndarray | float) -> np.ndarray:
        """Sample layered noise in [0, 1) at world coordinates (x, z)."""
        if self.octaves < 1:
            raise ValueError("octaves must be >= 1")
        total = np.zeros_like(np.asarray(x, dtype=np.float64))
        amplitude = 1.0
        scale = self.base_scale
        normalizer = 0.0
        for octave in range(self.octaves):
            layer = ValueNoise2D(seed=self.seed + octave * 1013, scale=scale)
            total = total + amplitude * layer.sample(x, z)
            normalizer += amplitude
            amplitude *= self.persistence
            scale = max(scale / self.lacunarity, 1.0)
        return total / normalizer
