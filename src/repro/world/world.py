"""The in-memory world: a collection of loaded chunks.

The :class:`VoxelWorld` holds the chunks that are currently resident in the
game server's memory.  Loading, generation and eviction policy live in the
chunk manager (:mod:`repro.server.chunkmanager`); this class only provides
block- and chunk-level access plus bookkeeping about which chunks exist.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional

from repro.world.block import BlockType
from repro.world.chunk import Chunk
from repro.world.coords import BlockPos, ChunkPos, block_to_chunk


class ChunkNotLoadedError(KeyError):
    """Raised when accessing a block whose chunk is not resident in memory."""


class VoxelWorld:
    """The set of chunks currently loaded in memory."""

    def __init__(self) -> None:
        self._chunks: dict[ChunkPos, Chunk] = {}

    # -- chunk management ---------------------------------------------------------

    def add_chunk(self, chunk: Chunk) -> None:
        self._chunks[chunk.position] = chunk

    def remove_chunk(self, position: ChunkPos) -> Chunk:
        if position not in self._chunks:
            raise ChunkNotLoadedError(f"chunk {position} is not loaded")
        return self._chunks.pop(position)

    def get_chunk(self, position: ChunkPos) -> Chunk:
        if position not in self._chunks:
            raise ChunkNotLoadedError(f"chunk {position} is not loaded")
        return self._chunks[position]

    def maybe_chunk(self, position: ChunkPos) -> Optional[Chunk]:
        return self._chunks.get(position)

    def is_loaded(self, position: ChunkPos) -> bool:
        return position in self._chunks

    @property
    def loaded_chunk_positions(self) -> list[ChunkPos]:
        return sorted(self._chunks)

    @property
    def loaded_chunk_count(self) -> int:
        return len(self._chunks)

    def __iter__(self) -> Iterator[Chunk]:
        return iter(self._chunks.values())

    def __len__(self) -> int:
        return len(self._chunks)

    # -- block access -------------------------------------------------------------

    def get_block(self, pos: BlockPos) -> BlockType:
        chunk_pos = block_to_chunk(pos)
        if chunk_pos not in self._chunks:
            raise ChunkNotLoadedError(f"block {pos} belongs to unloaded chunk {chunk_pos}")
        return self._chunks[chunk_pos].get_block(pos)

    def set_block(self, pos: BlockPos, block_type: BlockType) -> None:
        chunk_pos = block_to_chunk(pos)
        if chunk_pos not in self._chunks:
            raise ChunkNotLoadedError(f"block {pos} belongs to unloaded chunk {chunk_pos}")
        self._chunks[chunk_pos].set_block(pos, block_type)

    def block_loaded(self, pos: BlockPos) -> bool:
        return block_to_chunk(pos) in self._chunks

    def surface_height(self, x: int, z: int) -> int:
        chunk_pos = block_to_chunk(BlockPos(x, 0, z))
        if chunk_pos not in self._chunks:
            raise ChunkNotLoadedError(f"column ({x}, {z}) belongs to unloaded chunk {chunk_pos}")
        return self._chunks[chunk_pos].surface_height(x, z)

    # -- aggregate queries ----------------------------------------------------------

    def dirty_chunks(self) -> list[Chunk]:
        """Chunks modified since they were loaded (candidates for persistence)."""
        return [chunk for chunk in self._chunks.values() if chunk.dirty]

    def total_non_air_blocks(self) -> int:
        return sum(chunk.non_air_count() for chunk in self._chunks.values())

    def missing_chunks(self, wanted: Iterable[ChunkPos]) -> list[ChunkPos]:
        """The subset of ``wanted`` chunk positions that is not loaded."""
        return sorted(pos for pos in set(wanted) if pos not in self._chunks)
