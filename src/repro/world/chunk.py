"""Chunks: 16x16x256 columns of blocks.

Chunks are the unit of terrain generation, loading, caching and storage, just
as in the paper (a "chunk" there is an area of 16x16x256 blocks, Figure 11).
Block data is a dense ``uint8`` numpy array so chunks are cheap to copy,
serialize and hash.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

import numpy as np

from repro.world.block import BlockType, is_stateful
from repro.world.coords import CHUNK_SIZE, BlockPos, ChunkPos, chunk_origin

CHUNK_HEIGHT = 256


@dataclass
class Chunk:
    """One 16x16x256 column of blocks."""

    position: ChunkPos
    blocks: np.ndarray = field(default_factory=lambda: np.zeros(
        (CHUNK_SIZE, CHUNK_HEIGHT, CHUNK_SIZE), dtype=np.uint8
    ))
    generated_by: str = "unknown"
    dirty: bool = False

    def __post_init__(self) -> None:
        expected = (CHUNK_SIZE, CHUNK_HEIGHT, CHUNK_SIZE)
        if self.blocks.shape != expected:
            raise ValueError(
                f"chunk block array must have shape {expected}, got {self.blocks.shape}"
            )
        if self.blocks.dtype != np.uint8:
            self.blocks = self.blocks.astype(np.uint8)

    # -- local (in-chunk) coordinates -------------------------------------------------

    def _local(self, pos: BlockPos) -> tuple[int, int, int]:
        origin = chunk_origin(self.position)
        lx = pos.x - origin.x
        lz = pos.z - origin.z
        if not (0 <= lx < CHUNK_SIZE and 0 <= lz < CHUNK_SIZE):
            raise KeyError(f"block {pos} is not inside chunk {self.position}")
        if not (0 <= pos.y < CHUNK_HEIGHT):
            raise KeyError(f"block {pos} is outside the world height range")
        return lx, pos.y, lz

    def contains(self, pos: BlockPos) -> bool:
        origin = chunk_origin(self.position)
        return (
            origin.x <= pos.x < origin.x + CHUNK_SIZE
            and origin.z <= pos.z < origin.z + CHUNK_SIZE
            and 0 <= pos.y < CHUNK_HEIGHT
        )

    # -- block access ------------------------------------------------------------------

    def get_block(self, pos: BlockPos) -> BlockType:
        lx, ly, lz = self._local(pos)
        return BlockType(int(self.blocks[lx, ly, lz]))

    def set_block(self, pos: BlockPos, block_type: BlockType) -> None:
        lx, ly, lz = self._local(pos)
        self.blocks[lx, ly, lz] = int(block_type)
        self.dirty = True

    def surface_height(self, x: int, z: int) -> int:
        """The y of the highest non-air block in the column (or 0 if empty)."""
        origin = chunk_origin(self.position)
        lx, lz = x - origin.x, z - origin.z
        if not (0 <= lx < CHUNK_SIZE and 0 <= lz < CHUNK_SIZE):
            raise KeyError(f"column ({x}, {z}) is not inside chunk {self.position}")
        column = self.blocks[lx, :, lz]
        non_air = np.nonzero(column)[0]
        return int(non_air.max()) if non_air.size else 0

    # -- summary helpers ----------------------------------------------------------------

    def block_count(self, block_type: BlockType) -> int:
        return int(np.count_nonzero(self.blocks == int(block_type)))

    def non_air_count(self) -> int:
        return int(np.count_nonzero(self.blocks))

    def stateful_positions(self) -> list[BlockPos]:
        """Positions of every stateful block (SC member) in this chunk."""
        origin = chunk_origin(self.position)
        out: list[BlockPos] = []
        for block_type in BlockType:
            if not is_stateful(block_type):
                continue
            xs, ys, zs = np.nonzero(self.blocks == int(block_type))
            for lx, ly, lz in zip(xs, ys, zs):
                out.append(BlockPos(origin.x + int(lx), int(ly), origin.z + int(lz)))
        return sorted(out)

    def copy(self) -> "Chunk":
        return Chunk(
            position=self.position,
            blocks=self.blocks.copy(),
            generated_by=self.generated_by,
            dirty=self.dirty,
        )

    def content_hash(self) -> int:
        """A stable hash of the block contents (used in tests and caching).

        Derived with :mod:`hashlib` rather than builtin ``hash()``: Python
        salts ``str``/``bytes`` hashes per process (PYTHONHASHSEED), so the
        old tuple hash silently differed between processes while claiming
        stability.  This digest is a pure function of the chunk's position
        and block bytes — equal content always hashes equally, anywhere.
        """
        digest = hashlib.sha256()
        digest.update(f"{self.position.cx}:{self.position.cz}:".encode("ascii"))
        digest.update(self.blocks.tobytes())
        return int.from_bytes(digest.digest()[:8], "little")
