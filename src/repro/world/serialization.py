"""Chunk serialization.

Chunks are serialized to a compact binary representation before being written
to (simulated) storage.  The format is a small header followed by the
zlib-compressed block array, which gives realistic object sizes: a generated
default-world chunk compresses to a few kilobytes, terrain data being "the
most data-intensive" state in the paper's storage discussion.
"""

from __future__ import annotations

import struct
import zlib

import numpy as np

from repro.world.chunk import CHUNK_HEIGHT, Chunk
from repro.world.coords import CHUNK_SIZE, ChunkPos

_MAGIC = b"RCHK"
_VERSION = 1
_HEADER = struct.Struct(">4sBiiI")  # magic, version, cx, cz, payload length


class ChunkFormatError(ValueError):
    """Raised when deserializing bytes that are not a valid chunk blob."""


def chunk_to_bytes(chunk: Chunk) -> bytes:
    """Serialize a chunk to its storage representation."""
    payload = zlib.compress(chunk.blocks.tobytes(), level=6)
    header = _HEADER.pack(_MAGIC, _VERSION, chunk.position.cx, chunk.position.cz, len(payload))
    return header + payload


def chunk_from_bytes(data: bytes) -> Chunk:
    """Deserialize a chunk from its storage representation."""
    if len(data) < _HEADER.size:
        raise ChunkFormatError("chunk blob is shorter than the header")
    magic, version, cx, cz, payload_len = _HEADER.unpack_from(data)
    if magic != _MAGIC:
        raise ChunkFormatError(f"bad magic {magic!r}")
    if version != _VERSION:
        raise ChunkFormatError(f"unsupported chunk format version {version}")
    payload = data[_HEADER.size:_HEADER.size + payload_len]
    if len(payload) != payload_len:
        raise ChunkFormatError("chunk blob payload is truncated")
    raw = zlib.decompress(payload)
    expected = CHUNK_SIZE * CHUNK_HEIGHT * CHUNK_SIZE
    blocks = np.frombuffer(raw, dtype=np.uint8)
    if blocks.size != expected:
        raise ChunkFormatError(
            f"decompressed block array has {blocks.size} entries, expected {expected}"
        )
    blocks = blocks.reshape((CHUNK_SIZE, CHUNK_HEIGHT, CHUNK_SIZE)).copy()
    return Chunk(position=ChunkPos(cx, cz), blocks=blocks, generated_by="storage")


def serialized_size_bytes(chunk: Chunk) -> int:
    """Size of the chunk's storage representation in bytes."""
    return len(chunk_to_bytes(chunk))
