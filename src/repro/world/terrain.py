"""Procedural terrain generation (PCG).

Two world types from the paper's experimental setup (Section IV-A):

* ``default`` — procedurally generated terrain with mountains, water and
  different surface materials, built from layered value noise.
* ``flat`` — an infinite plain, used for simulated-construct experiments.

Generation is deterministic in (seed, chunk position), so a chunk generated
inside a serverless function is bit-identical to one generated locally — the
property Servo relies on when it offloads generation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.world.block import BlockType
from repro.world.chunk import CHUNK_HEIGHT, Chunk
from repro.world.coords import CHUNK_SIZE, ChunkPos, chunk_origin
from repro.world.noise import LayeredNoise

SEA_LEVEL = 62
FLAT_SURFACE_LEVEL = 64


class TerrainGenerator:
    """Interface for terrain generators."""

    #: name used in scenario configuration ("default" or "flat")
    world_type: str = "abstract"

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)

    def generate_chunk(self, position: ChunkPos) -> Chunk:
        raise NotImplementedError

    def generation_work_units(self) -> float:
        """Relative computational weight of generating one chunk.

        Used by the FaaS resource model and the local tick cost model to turn
        chunk generation into virtual milliseconds.  The flat world is much
        cheaper to produce than the default world.
        """
        raise NotImplementedError


class FlatTerrainGenerator(TerrainGenerator):
    """An infinite plain: bedrock, stone, dirt and a grass surface."""

    world_type = "flat"

    def __init__(self, seed: int = 0) -> None:
        super().__init__(seed)
        self._template: np.ndarray | None = None

    def generate_chunk(self, position: ChunkPos) -> Chunk:
        # Every flat chunk has identical contents, so the column layout is
        # built once and copied — far cheaper than refilling the strata.
        if self._template is None:
            template = np.zeros_like(Chunk(position=position).blocks)
            template[:, 0, :] = int(BlockType.BEDROCK)
            template[:, 1:FLAT_SURFACE_LEVEL - 3, :] = int(BlockType.STONE)
            template[:, FLAT_SURFACE_LEVEL - 3:FLAT_SURFACE_LEVEL, :] = int(BlockType.DIRT)
            template[:, FLAT_SURFACE_LEVEL, :] = int(BlockType.GRASS)
            self._template = template
        return Chunk(
            position=position,
            blocks=self._template.copy(),
            generated_by=f"flat:{self.seed}",
            dirty=False,
        )

    def generation_work_units(self) -> float:
        return 0.1


class DefaultTerrainGenerator(TerrainGenerator):
    """Noise-based terrain with mountains, beaches, water and snow caps."""

    world_type = "default"

    def __init__(self, seed: int = 0) -> None:
        super().__init__(seed)
        self._height_noise = LayeredNoise(seed=self.seed, octaves=5, base_scale=96.0)
        self._roughness_noise = LayeredNoise(seed=self.seed + 7919, octaves=3, base_scale=256.0)
        self._moisture_noise = LayeredNoise(seed=self.seed + 104729, octaves=3, base_scale=160.0)

    def surface_height_at(self, x: np.ndarray, z: np.ndarray) -> np.ndarray:
        """Surface height for world columns (vectorised)."""
        base = self._height_noise.sample(x, z)
        roughness = self._roughness_noise.sample(x, z)
        # Roughness modulates the terrain amplitude: plains vs mountains.
        amplitude = 20.0 + 70.0 * roughness
        height = SEA_LEVEL - 10.0 + amplitude * base
        return np.clip(np.round(height), 1, CHUNK_HEIGHT - 2).astype(np.int64)

    def generate_chunk(self, position: ChunkPos) -> Chunk:
        chunk = Chunk(position=position, generated_by=f"default:{self.seed}")
        origin = chunk_origin(position)
        xs = np.arange(origin.x, origin.x + CHUNK_SIZE)
        zs = np.arange(origin.z, origin.z + CHUNK_SIZE)
        grid_x, grid_z = np.meshgrid(xs, zs, indexing="ij")
        heights = self.surface_height_at(grid_x, grid_z)
        moisture = self._moisture_noise.sample(grid_x, grid_z)

        blocks = chunk.blocks
        blocks[:, 0, :] = int(BlockType.BEDROCK)
        y_axis = np.arange(CHUNK_HEIGHT).reshape(1, CHUNK_HEIGHT, 1)
        height_grid = heights.reshape(CHUNK_SIZE, 1, CHUNK_SIZE)

        # Fill stone below the surface, dirt near the surface.
        stone_mask = (y_axis >= 1) & (y_axis < height_grid - 3)
        dirt_mask = (y_axis >= height_grid - 3) & (y_axis < height_grid)
        blocks[stone_mask.nonzero()] = int(BlockType.STONE)
        blocks[dirt_mask.nonzero()] = int(BlockType.DIRT)

        # Surface material depends on altitude and moisture.
        for lx in range(CHUNK_SIZE):
            for lz in range(CHUNK_SIZE):
                surface_y = int(heights[lx, lz])
                wetness = float(moisture[lx, lz])
                if surface_y <= SEA_LEVEL:
                    surface = BlockType.SAND if wetness < 0.6 else BlockType.GRAVEL
                elif surface_y >= SEA_LEVEL + 55:
                    surface = BlockType.SNOW
                elif wetness < 0.25:
                    surface = BlockType.SAND
                else:
                    surface = BlockType.GRASS
                blocks[lx, surface_y, lz] = int(surface)
                # Fill water above low terrain up to sea level.
                if surface_y < SEA_LEVEL:
                    blocks[lx, surface_y + 1:SEA_LEVEL + 1, lz] = int(BlockType.WATER)

        chunk.dirty = False
        return chunk

    def generation_work_units(self) -> float:
        return 1.0


def make_terrain_generator(world_type: str, seed: int = 0) -> TerrainGenerator:
    """Create a terrain generator by name ("default" or "flat")."""
    if world_type == "default":
        return DefaultTerrainGenerator(seed=seed)
    if world_type == "flat":
        return FlatTerrainGenerator(seed=seed)
    raise ValueError(f"unknown world type {world_type!r} (expected 'default' or 'flat')")
