"""Block types of the modifiable virtual environment.

The world is a voxel grid.  Most blocks are static terrain (air, dirt, stone,
...).  A small set of *stateful* block types carries internal state and
participates in simulated constructs (Section II-A of the paper): power
sources, wires, lamps, torches (inverters), repeaters, pistons and hoppers.
"""

from __future__ import annotations

from enum import IntEnum


class BlockType(IntEnum):
    """Block type identifiers.

    Values are stable small integers so chunks can be stored as uint8 arrays.
    """

    AIR = 0
    STONE = 1
    DIRT = 2
    GRASS = 3
    SAND = 4
    WATER = 5
    WOOD = 6
    LEAVES = 7
    BEDROCK = 8
    SNOW = 9
    GRAVEL = 10

    # Stateful block types used by simulated constructs.
    POWER_SOURCE = 32      # battery: always emits power
    LEVER = 33             # player-toggled power source
    WIRE = 34              # propagates power with decay
    LAMP = 35              # lit when powered
    TORCH = 36             # inverter: emits power unless its input is powered
    REPEATER = 37          # forwards power with a configurable delay
    PISTON = 38            # extends when powered
    HOPPER = 39            # moves items each activation (farm building block)
    COMPARATOR = 40        # outputs the max of its side inputs


_STATEFUL_TYPES = frozenset(
    {
        BlockType.POWER_SOURCE,
        BlockType.LEVER,
        BlockType.WIRE,
        BlockType.LAMP,
        BlockType.TORCH,
        BlockType.REPEATER,
        BlockType.PISTON,
        BlockType.HOPPER,
        BlockType.COMPARATOR,
    }
)

_SOLID_TYPES = frozenset(
    {
        BlockType.STONE,
        BlockType.DIRT,
        BlockType.GRASS,
        BlockType.SAND,
        BlockType.WOOD,
        BlockType.BEDROCK,
        BlockType.SNOW,
        BlockType.GRAVEL,
    }
)


def is_stateful(block_type: BlockType) -> bool:
    """True if the block type carries internal state (is part of an SC)."""
    return block_type in _STATEFUL_TYPES


def is_solid(block_type: BlockType) -> bool:
    """True for opaque terrain blocks avatars cannot walk through."""
    return block_type in _SOLID_TYPES


def is_air(block_type: BlockType) -> bool:
    return block_type == BlockType.AIR
