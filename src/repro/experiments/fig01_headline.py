"""Figure 1: headline maximum number of supported players.

The paper's opening figure compares the maximum number of supported players of
Servo (150), Minecraft (90) and Opencraft (10) under the 100-construct
workload — the same data as the 100-construct row of Figure 7a.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.harness import ExperimentSettings, format_table
from repro.experiments.max_players import find_max_players

PAPER_VALUES = {"servo": 150, "minecraft": 90, "opencraft": 10}
HEADLINE_CONSTRUCTS = 100


@dataclass
class HeadlineResult:
    """Measured maximum players per game for the headline workload."""

    constructs: int
    max_players: dict[str, int] = field(default_factory=dict)

    def improvement_over(self, baseline: str) -> int:
        return self.max_players["servo"] - self.max_players[baseline]


def run_fig01(settings: ExperimentSettings | None = None) -> HeadlineResult:
    """Reproduce Figure 1."""
    settings = settings or ExperimentSettings()
    result = HeadlineResult(constructs=HEADLINE_CONSTRUCTS)
    for game in ("opencraft", "minecraft", "servo"):
        search = find_max_players(game, HEADLINE_CONSTRUCTS, settings)
        result.max_players[game] = search.max_players
    return result


def format_fig01(result: HeadlineResult) -> str:
    """Render the figure as a paper-vs-measured table."""
    rows = [
        [game, str(PAPER_VALUES[game]), str(result.max_players.get(game, 0))]
        for game in ("opencraft", "minecraft", "servo")
    ]
    return format_table(["game", "paper max players", "measured max players"], rows)
