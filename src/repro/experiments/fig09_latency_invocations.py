"""Figure 9: offload latency, invocation rate and cost versus simulation length.

The left panel shows the end-to-end latency of the construct-simulation
function for 50-, 100- and 200-step simulations; the right panel shows the
number of invocations per minute.  Section IV-C also derives an hourly cost
from these numbers, which the paper compares to the price of one c5n.xlarge VM
($0.216 per hour).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.fig08_efficiency import OffloadRunResult, run_offload_configuration
from repro.experiments.harness import ExperimentSettings, format_table

SIMULATION_LENGTHS = (50, 100, 200)
#: the paper reports a 1459 ms mean latency for 200-step simulations
PAPER_MEAN_LATENCY_200_STEPS_MS = 1459.0
#: the paper's cost estimate range in USD per hour
PAPER_COST_RANGE_USD_PER_HOUR = (0.216, 0.244)
C5N_XLARGE_USD_PER_HOUR = 0.216


@dataclass
class Fig09Result:
    """Latency, invocation-rate and cost measurements per simulation length."""

    runs: dict[int, OffloadRunResult] = field(default_factory=dict)

    def mean_latency_ms(self, steps: int) -> float:
        return self.runs[steps].latency_stats().mean

    def invocations_per_minute(self, steps: int) -> float:
        return self.runs[steps].invocations_per_minute()

    def cost_per_hour_usd(self, steps: int) -> float:
        return self.runs[steps].cost_per_hour_usd()


def run_fig09(
    settings: ExperimentSettings | None = None,
    lengths: tuple[int, ...] = SIMULATION_LENGTHS,
    construct_count: int = 50,
    tick_lead: int = 20,
) -> Fig09Result:
    """Reproduce Figure 9 (50 constructs, 20-tick lead, varying lengths)."""
    settings = settings or ExperimentSettings()
    result = Fig09Result()
    for steps in lengths:
        result.runs[steps] = run_offload_configuration(
            tick_lead, steps, settings, construct_count=construct_count
        )
    return result


def format_fig09(result: Fig09Result) -> str:
    rows = []
    for steps, run in sorted(result.runs.items()):
        latency = run.latency_stats()
        rows.append(
            [
                str(steps),
                f"{latency.mean:.0f}",
                f"{latency.p95:.0f}",
                f"{run.invocations_per_minute():.0f}",
                f"{run.cost_per_hour_usd():.3f}",
            ]
        )
    return format_table(
        ["sim length", "mean latency ms", "p95 latency ms", "invocations/min", "cost $/h"],
        rows,
    )
