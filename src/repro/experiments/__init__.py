"""Experiment harness: one module per table/figure of the paper's evaluation.

Each experiment module exposes a ``run_*`` function that takes a
:class:`~repro.experiments.harness.ExperimentSettings` (controlling duration,
seeds and sweep sizes so benchmarks can use scaled-down runs) and returns a
dataclass of results, plus a ``format_*`` helper that renders the same rows or
series the paper reports.  The registry maps experiment ids (``fig07a``,
``fig13``, ...) to their runners.
"""

from repro.experiments.cluster_scalability import (
    ClusterScalabilityResult,
    run_cluster_scalability,
)
from repro.experiments.harness import (
    CLUSTER_GAMES,
    ExperimentSettings,
    GAME_FACTORIES,
    PAPER_SETTINGS,
    QUICK_SETTINGS,
    build_game_server,
    settings_for_scale,
)
from repro.experiments.max_players import MaxPlayersResult, find_max_players
from repro.experiments.registry import EXPERIMENTS, run_experiment

__all__ = [
    "ExperimentSettings",
    "GAME_FACTORIES",
    "CLUSTER_GAMES",
    "QUICK_SETTINGS",
    "PAPER_SETTINGS",
    "settings_for_scale",
    "build_game_server",
    "find_max_players",
    "MaxPlayersResult",
    "ClusterScalabilityResult",
    "run_cluster_scalability",
    "EXPERIMENTS",
    "run_experiment",
]
