"""Figure 7: scalability under simulated-construct workloads.

Figure 7a sweeps the construct count (0, 50, 100, 200) and reports, per game,
the maximum number of supported players.  Figure 7b fixes 200 constructs and
reports the tick-duration distribution for 10..200 connected players per game.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.harness import ExperimentSettings, build_game_server, format_table
from repro.experiments.max_players import find_max_players
from repro.server import GameConfig
from repro.sim import SimulationEngine
from repro.sim.metrics import BoxplotStats
from repro.workload import behaviour_a

GAMES = ("opencraft", "minecraft", "servo")
CONSTRUCT_COUNTS = (0, 50, 100, 200)

#: the paper's Figure 7a values (max supported players)
PAPER_FIG07A = {
    ("opencraft", 0): 200, ("opencraft", 50): 120, ("opencraft", 100): 10, ("opencraft", 200): 0,
    ("minecraft", 0): 110, ("minecraft", 50): 100, ("minecraft", 100): 90, ("minecraft", 200): 0,
    ("servo", 0): 190, ("servo", 50): 170, ("servo", 100): 150, ("servo", 200): 120,
}


@dataclass
class Fig07aResult:
    """Maximum supported players per (game, construct count)."""

    max_players: dict[tuple[str, int], int] = field(default_factory=dict)
    evaluated: dict[tuple[str, int], dict[int, float]] = field(default_factory=dict)


def run_fig07a(
    settings: ExperimentSettings | None = None,
    construct_counts: tuple[int, ...] = CONSTRUCT_COUNTS,
    games: tuple[str, ...] = GAMES,
) -> Fig07aResult:
    """Reproduce Figure 7a."""
    settings = settings or ExperimentSettings()
    result = Fig07aResult()
    for game in games:
        for constructs in construct_counts:
            search = find_max_players(game, constructs, settings)
            result.max_players[(game, constructs)] = search.max_players
            result.evaluated[(game, constructs)] = search.evaluated
    return result


def format_fig07a(result: Fig07aResult) -> str:
    rows = []
    for (game, constructs), measured in sorted(result.max_players.items()):
        paper = PAPER_FIG07A.get((game, constructs))
        rows.append(
            [
                game,
                str(constructs),
                str(paper) if paper is not None else "-",
                str(measured),
            ]
        )
    return format_table(["game", "constructs", "paper max players", "measured max players"], rows)


@dataclass
class Fig07bResult:
    """Tick-duration distributions at 200 constructs, per game and player count."""

    constructs: int
    distributions: dict[tuple[str, int], BoxplotStats] = field(default_factory=dict)


def run_fig07b(
    settings: ExperimentSettings | None = None,
    player_counts: tuple[int, ...] | None = None,
    games: tuple[str, ...] = GAMES,
    constructs: int = 200,
) -> Fig07bResult:
    """Reproduce Figure 7b."""
    settings = settings or ExperimentSettings()
    if player_counts is None:
        player_counts = tuple(
            range(settings.player_step, settings.max_players + 1, settings.player_step)
        )
    result = Fig07bResult(constructs=constructs)
    for game in games:
        for players in player_counts:
            engine = SimulationEngine(seed=settings.seed)
            server = build_game_server(game, engine, GameConfig(world_type="flat"))
            scenario = behaviour_a(
                players=players, constructs=constructs, duration_s=settings.duration_s
            )
            run = scenario.run(server)
            result.distributions[(game, players)] = run.tick_stats()
    return result


def format_fig07b(result: Fig07bResult) -> str:
    rows = []
    for (game, players), stats in sorted(result.distributions.items()):
        rows.append(
            [
                game,
                str(players),
                f"{stats.p5:.1f}",
                f"{stats.median:.1f}",
                f"{stats.p95:.1f}",
                f"{stats.maximum:.1f}",
            ]
        )
    return format_table(
        ["game", "players", "p5 ms", "median ms", "p95 ms", "max ms"], rows
    )
