"""Flash crowd at spawn: interest management under a population hotspot.

The ``flash_crowd_at_spawn`` chaos scenario converges the whole population on
one zone (behaviour ``C``).  This experiment runs it across the opencraft,
servo and cluster hosts, each in legacy observe-everything mode and with
area-of-interest broadcast enabled, and reports a Table-I-style one-line
summary per configuration: tick P99, fraction of ticks over the 50 ms budget,
delta entries encoded, update batches flushed, and the largest staleness
observed at any flush — which must never exceed the configured dyconit bound.

Every configuration is run twice with the same seed; the ``deterministic``
column asserts the runs were bit-identical (the interest path draws no
randomness of its own, so it must preserve the simulation's determinism).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.experiments.harness import ExperimentSettings, build_game_server, format_table
from repro.server import GameConfig
from repro.sim import SimulationEngine
from repro.sim.metrics import CONSISTENCY_ERROR_HISTOGRAM, metric_name, percentile
from repro.workload.scenarios import TICK_BUDGET_MS, flash_crowd_at_spawn

#: the interest radius used by the interest-enabled runs (chunks)
CROWD_INTEREST_RADIUS = 4


@dataclass(frozen=True)
class FlashCrowdCase:
    """One host configuration to drive through the flash crowd."""

    game: str = "opencraft"
    shards: Optional[int] = None
    players: int = 40
    interest_radius_chunks: Optional[int] = None

    @property
    def label(self) -> str:
        shard_suffix = f" s{self.shards}" if self.shards else ""
        mode = (
            f"interest r{self.interest_radius_chunks}"
            if self.interest_radius_chunks
            else "legacy"
        )
        return f"{self.game}{shard_suffix} {mode}"


@dataclass
class FlashCrowdMeasurement:
    """One configuration's crowd summary (first of the two identical runs)."""

    case: FlashCrowdCase
    tick_p99_ms: float
    fraction_over_budget: float
    updates_sent_total: int
    entries_flushed: int
    flushes: int
    staleness_max: float
    staleness_bound: int
    deterministic: bool

    @property
    def bounds_held(self) -> bool:
        return self.staleness_max <= self.staleness_bound


@dataclass
class FlashCrowdResult:
    """The full sweep: one measurement per case."""

    settings: ExperimentSettings
    measurements: list[FlashCrowdMeasurement] = field(default_factory=list)


def _cases(players: int) -> tuple[FlashCrowdCase, ...]:
    pairs = []
    for game, shards in (("opencraft", None), ("servo", None), ("opencraft-cluster", 2)):
        pairs.append(FlashCrowdCase(game=game, shards=shards, players=players))
        pairs.append(
            FlashCrowdCase(
                game=game,
                shards=shards,
                players=players,
                interest_radius_chunks=CROWD_INTEREST_RADIUS,
            )
        )
    return tuple(pairs)


def _run_case(case: FlashCrowdCase, settings: ExperimentSettings):
    """One seeded run; returns (result, updates, entries, flushes, staleness)."""
    engine = SimulationEngine(seed=settings.seed)
    config = GameConfig(
        world_type="flat", interest_radius_chunks=case.interest_radius_chunks
    )
    host = build_game_server(case.game, engine, config, shards=case.shards)
    scenario = flash_crowd_at_spawn(players=case.players, duration_s=settings.duration_s)
    scenario.warmup_s = settings.warmup_s
    result = scenario.run(host)
    sessions = getattr(host, "sessions", {})
    updates = sum(session.updates_sent for session in sessions.values())
    metrics = engine.metrics
    entries = int(metrics.counter("interest_entries_flushed"))
    flushes = int(metrics.counter("interest_flushes"))
    staleness_hist = metrics.histogram(metric_name(CONSISTENCY_ERROR_HISTOGRAM))
    staleness_max = staleness_hist.maximum() if len(staleness_hist) else 0.0
    return result, updates, entries, flushes, staleness_max


def measure_flash_crowd(
    case: FlashCrowdCase, settings: ExperimentSettings
) -> FlashCrowdMeasurement:
    """Run one case twice (same seed) and compare for bit-identity."""
    first = _run_case(case, settings)
    second = _run_case(case, settings)
    deterministic = (
        first[0].tick_durations_ms == second[0].tick_durations_ms
        and first[1:] == second[1:]
    )
    result, updates, entries, flushes, staleness_max = first
    return FlashCrowdMeasurement(
        case=case,
        tick_p99_ms=percentile(result.tick_durations_ms, 99),
        fraction_over_budget=result.fraction_over_budget(TICK_BUDGET_MS),
        updates_sent_total=updates,
        entries_flushed=entries,
        flushes=flushes,
        staleness_max=staleness_max,
        staleness_bound=GameConfig().interest_max_staleness_ticks,
        deterministic=deterministic,
    )


def run_flash_crowd(
    settings: ExperimentSettings | None = None,
    cases: tuple[FlashCrowdCase, ...] | None = None,
) -> FlashCrowdResult:
    """Measure the flash-crowd hotspot for each host configuration."""
    settings = settings or ExperimentSettings()
    if cases is None:
        cases = _cases(players=min(40, settings.max_players))
    result = FlashCrowdResult(settings=settings)
    for case in cases:
        result.measurements.append(measure_flash_crowd(case, settings))
    return result


def format_flash_crowd(result: FlashCrowdResult) -> str:
    """Render the crowd summary as a table."""
    headers = [
        "configuration",
        "tick P99 (ms)",
        "over budget",
        "updates sent",
        "entries",
        "flushes",
        "staleness max",
        "bound held",
        "deterministic",
    ]
    rows = []
    for m in result.measurements:
        interest = bool(m.case.interest_radius_chunks)
        rows.append(
            [
                m.case.label,
                f"{m.tick_p99_ms:.1f}",
                f"{100.0 * m.fraction_over_budget:.1f}%",
                str(m.updates_sent_total),
                str(m.entries_flushed) if interest else "-",
                str(m.flushes) if interest else "-",
                f"{m.staleness_max:.0f}" if interest else "-",
                ("yes" if m.bounds_held else "NO") if interest else "-",
                "yes" if m.deterministic else "NO",
            ]
        )
    title = (
        "Flash crowd at spawn (whole population converges on one zone; "
        f"seed {result.settings.seed})"
    )
    return f"{title}\n{format_table(headers, rows)}"
