"""Availability under shard failure: recovery metrics for killed shards.

The paper argues (Section II) that a serverless MVE must survive component
failure without losing player state.  This experiment quantifies that claim
for the cluster hosts: it runs the ``shard_kill_at_peak`` chaos scenario —
one shard crashes mid-measurement and is respawned after a fixed outage —
and reports a Table-I-style recovery summary per configuration: MTTR in
lockstep rounds, sessions recovered and lost, messages that died with the
shard's inbox, player-ticks lost to the outage, and the P99 round duration
including the recovery transient.

Every run is executed twice with the same seed; the ``deterministic`` column
asserts that both runs produced identical fault timelines and recovery
records, the bit-reproducibility guarantee the fault subsystem makes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.harness import ExperimentSettings, build_game_server, format_table
from repro.server import GameConfig
from repro.sim import SimulationEngine
from repro.sim.metrics import percentile
from repro.workload.scenarios import shard_kill_at_peak


@dataclass(frozen=True)
class AvailabilityCase:
    """One shard-kill configuration to measure."""

    game: str = "servo-cluster"
    shards: int = 2
    players: int = 24
    constructs: int = 8
    #: which shard dies (0 hosts the construct workload, so killing it also
    #: exercises construct re-placement)
    kill_shard: int = 0
    #: outage length before the replacement shard comes up (virtual seconds)
    respawn_after_s: float = 2.0

    @property
    def label(self) -> str:
        return f"{self.game} s{self.shards} kill#{self.kill_shard}"


@dataclass
class AvailabilityMeasurement:
    """Recovery statistics for one case (first of the two identical runs)."""

    case: AvailabilityCase
    kills: int
    mttr_rounds: float
    sessions_recovered: int
    sessions_lost: int
    messages_lost: int
    lost_player_ticks: int
    constructs_recovered: int
    round_p99_ms: float
    timeline_digest: str
    #: both same-seed runs produced identical timelines and recovery records
    deterministic: bool

    @property
    def recovery_pct(self) -> float:
        total = self.sessions_recovered + self.sessions_lost
        return 100.0 * self.sessions_recovered / total if total else 100.0


@dataclass
class AvailabilityResult:
    """The full sweep: one measurement per case."""

    settings: ExperimentSettings
    measurements: list[AvailabilityMeasurement] = field(default_factory=list)


DEFAULT_CASES: tuple[AvailabilityCase, ...] = (
    AvailabilityCase(kill_shard=0),
    AvailabilityCase(kill_shard=1),
    AvailabilityCase(game="opencraft-cluster", kill_shard=0),
)


def _run_case(case: AvailabilityCase, settings: ExperimentSettings):
    """One seeded run; returns (records, timeline digest, P99 round ms)."""
    engine = SimulationEngine(seed=settings.seed)
    cluster = build_game_server(
        case.game, engine, GameConfig(world_type="flat"), shards=case.shards
    )
    scenario = shard_kill_at_peak(
        players=case.players,
        constructs=case.constructs,
        duration_s=settings.duration_s,
        kill_at_s=settings.warmup_s + settings.duration_s / 2.0,
        respawn_after_s=case.respawn_after_s,
        shard=case.kill_shard,
    )
    scenario.warmup_s = settings.warmup_s
    result = scenario.run(cluster)
    digest = cluster.fault_injector.timeline.digest()
    return list(cluster.recovery_records), digest, percentile(result.tick_durations_ms, 99)


def measure_availability(
    case: AvailabilityCase, settings: ExperimentSettings
) -> AvailabilityMeasurement:
    """Run one case twice (same seed) and fold its recovery records."""
    records, digest, p99 = _run_case(case, settings)
    records_again, digest_again, p99_again = _run_case(case, settings)
    deterministic = (
        digest == digest_again and records == records_again and p99 == p99_again
    )
    return AvailabilityMeasurement(
        case=case,
        kills=len(records),
        mttr_rounds=(
            sum(record.downtime_rounds for record in records) / len(records)
            if records
            else 0.0
        ),
        sessions_recovered=sum(record.sessions_recovered for record in records),
        sessions_lost=sum(record.sessions_lost for record in records),
        messages_lost=sum(record.messages_lost for record in records),
        lost_player_ticks=sum(record.lost_player_ticks for record in records),
        constructs_recovered=sum(record.constructs_recovered for record in records),
        round_p99_ms=p99,
        timeline_digest=digest,
        deterministic=deterministic,
    )


def run_availability(
    settings: ExperimentSettings | None = None,
    cases: tuple[AvailabilityCase, ...] = DEFAULT_CASES,
) -> AvailabilityResult:
    """Measure shard-failure recovery for each case."""
    settings = settings or ExperimentSettings()
    result = AvailabilityResult(settings=settings)
    for case in cases:
        result.measurements.append(measure_availability(case, settings))
    return result


def format_availability(result: AvailabilityResult) -> str:
    """Render the recovery summary as a table."""
    headers = [
        "configuration",
        "kills",
        "MTTR (rounds)",
        "sessions recovered",
        "recovery %",
        "msgs lost",
        "player-ticks lost",
        "constructs",
        "round P99 (ms)",
        "deterministic",
    ]
    rows = []
    for m in result.measurements:
        rows.append(
            [
                m.case.label,
                str(m.kills),
                f"{m.mttr_rounds:.0f}",
                f"{m.sessions_recovered}/{m.sessions_recovered + m.sessions_lost}",
                f"{m.recovery_pct:.0f}%",
                str(m.messages_lost),
                str(m.lost_player_ticks),
                str(m.constructs_recovered),
                f"{m.round_p99_ms:.1f}",
                "yes" if m.deterministic else "NO",
            ]
        )
    title = (
        "Shard-failure recovery (shard killed mid-measurement, "
        f"respawned after its outage; seed {result.settings.seed})"
    )
    return f"{title}\n{format_table(headers, rows)}"
