"""Figure 11: terrain-generation latency and cost-efficiency vs function memory.

On AWS Lambda the vCPU share grows with the memory allocation, so the latency
of generating one chunk (16x16x256 blocks) drops as memory grows — but
sublinearly, and small configurations show much larger variability.  The
second panel normalises a performance-to-cost ratio (inverse of latency times
memory), which favours small configurations except the smallest one.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.terrain_service import TERRAIN_GENERATION_FUNCTION, TerrainRequest, make_terrain_handler
from repro.experiments.harness import ExperimentSettings, format_table
from repro.faas import AWS_LAMBDA, FaasPlatform, FunctionDefinition
from repro.faas.resources import FIGURE_11_MEMORY_CONFIGS_MB
from repro.sim import SimulationEngine
from repro.sim.metrics import BoxplotStats, boxplot_stats


@dataclass
class Fig11Result:
    """Latency samples and derived cost-efficiency per memory configuration."""

    latency_samples_s: dict[int, list[float]] = field(default_factory=dict)

    def stats(self, memory_mb: int) -> BoxplotStats:
        return boxplot_stats(self.latency_samples_s[memory_mb])

    def performance_to_cost(self) -> dict[int, float]:
        """Normalised performance-to-cost ratio (1.0 is best), as in Figure 11b."""
        raw = {}
        for memory_mb, samples in self.latency_samples_s.items():
            mean_latency = sum(samples) / len(samples)
            raw[memory_mb] = 1.0 / (mean_latency * memory_mb)
        best = max(raw.values())
        return {memory_mb: value / best for memory_mb, value in raw.items()}


def run_fig11(
    settings: ExperimentSettings | None = None,
    memory_configs_mb: tuple[int, ...] = FIGURE_11_MEMORY_CONFIGS_MB,
    invocations_per_config: int | None = None,
) -> Fig11Result:
    """Reproduce Figure 11 by invoking the terrain function at each memory size."""
    settings = settings or ExperimentSettings()
    if invocations_per_config is None:
        invocations_per_config = max(20, settings.latency_samples // 20)
    result = Fig11Result()
    for memory_mb in memory_configs_mb:
        engine = SimulationEngine(seed=settings.seed + memory_mb)
        platform = FaasPlatform(engine, provider=AWS_LAMBDA)
        platform.register(
            FunctionDefinition(
                name=TERRAIN_GENERATION_FUNCTION,
                handler=make_terrain_handler(),
                memory_mb=memory_mb,
            )
        )
        samples = []
        for index in range(invocations_per_config):
            invocation = platform.invoke(
                TERRAIN_GENERATION_FUNCTION,
                TerrainRequest(world_type="default", seed=7, cx=index, cz=-index),
            )
            samples.append(invocation.latency_ms / 1000.0)
            # Invocations are spread over time so most hit warm environments,
            # as in the paper's steady-state measurement.
            engine.advance_by(2000.0)
        result.latency_samples_s[memory_mb] = samples
    return result


def format_fig11(result: Fig11Result) -> str:
    ratios = result.performance_to_cost()
    rows = []
    for memory_mb in sorted(result.latency_samples_s):
        stats = result.stats(memory_mb)
        rows.append(
            [
                str(memory_mb),
                f"{stats.mean:.2f}",
                f"{stats.p95:.2f}",
                f"{stats.maximum:.2f}",
                f"{ratios[memory_mb]:.2f}",
            ]
        )
    return format_table(
        ["memory MB", "mean latency s", "p95 latency s", "max latency s", "perf/cost (norm.)"],
        rows,
    )
