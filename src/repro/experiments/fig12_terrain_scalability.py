"""Figure 12: scalability of serverless terrain generation.

Figure 12a: players join every ten seconds and walk away from spawn at 3 (S3)
or 8 (S8) blocks per second; the supported player count is the number of
connected players when the rolling 95th-percentile tick duration first exceeds
the 50 ms budget.  Figure 12b repeats the randomised workload R several times
and reports the distribution of supported players per game.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.harness import ExperimentSettings, build_game_server, format_table
from repro.server import GameConfig
from repro.sim import SimulationEngine
from repro.workload import random_walk, star
from repro.workload.scenarios import TICK_BUDGET_MS

GAMES = ("opencraft", "servo")
SPEEDS = (3.0, 8.0)


def supported_players_from_series(
    times_ms: list[float],
    durations_ms: list[float],
    players_ms: list[float],
    players_values: list[float],
    window_ms: float = 2500.0,
    budget_ms: float = TICK_BUDGET_MS,
) -> int:
    """Players connected when the rolling p95 tick duration first exceeds the budget.

    Mirrors the paper's reading of Figure 12a: the 95th percentile curve
    (2.5-second windows) crossing the 50 ms line determines the supported
    player count.  If the budget is never exceeded, every connected player is
    supported.
    """
    if not times_ms:
        raise ValueError("empty tick-duration series")
    start = times_ms[0]
    end = times_ms[-1]
    t = start
    crossing_time = None
    index = 0
    while t <= end:
        window = [
            durations_ms[i]
            for i in range(index, len(times_ms))
            if t <= times_ms[i] < t + window_ms
        ]
        # advance index to keep the scan linear
        while index < len(times_ms) and times_ms[index] < t:
            index += 1
        if window:
            window.sort()
            p95 = window[int(0.95 * (len(window) - 1))]
            if p95 > budget_ms:
                crossing_time = t
                break
        t += window_ms
    if crossing_time is None:
        return int(max(players_values)) if players_values else 0
    connected = [
        value for time, value in zip(players_ms, players_values) if time <= crossing_time
    ]
    supported = int(connected[-1]) - 1 if connected else 0
    return max(0, supported)


@dataclass
class TerrainScalabilityRun:
    """One game's run for one workload."""

    game: str
    workload: str
    supported_players: int
    max_connected: int
    tick_series: list[tuple[float, float]] = field(default_factory=list)


@dataclass
class Fig12aResult:
    runs: dict[tuple[str, str], TerrainScalabilityRun] = field(default_factory=dict)


def _run_star(game: str, speed: float, settings: ExperimentSettings,
              players: int, join_interval_s: float, duration_s: float) -> TerrainScalabilityRun:
    engine = SimulationEngine(seed=settings.seed)
    server = build_game_server(game, engine, GameConfig(world_type="default"))
    scenario = star(
        players=players, speed=speed, duration_s=duration_s, join_interval_s=join_interval_s
    )
    scenario.warmup_s = 0.0
    scenario.run(server)
    metrics = engine.metrics
    tick_series = metrics.series("tick_duration_over_time")
    player_series = metrics.series("players_over_time")
    supported = supported_players_from_series(
        tick_series.times_ms, tick_series.values, player_series.times_ms, player_series.values
    )
    return TerrainScalabilityRun(
        game=game,
        workload=f"S{speed:g}",
        supported_players=supported,
        max_connected=int(max(player_series.values)) if len(player_series) else 0,
        tick_series=list(zip(tick_series.times_ms, tick_series.values)),
    )


def run_fig12a(
    settings: ExperimentSettings | None = None,
    speeds: tuple[float, ...] = SPEEDS,
    games: tuple[str, ...] = GAMES,
    players: int = 40,
    join_interval_s: float = 10.0,
    duration_s: float | None = None,
) -> Fig12aResult:
    """Reproduce Figure 12a."""
    settings = settings or ExperimentSettings()
    if duration_s is None:
        duration_s = players * join_interval_s + 30.0
    result = Fig12aResult()
    for game in games:
        for speed in speeds:
            run = _run_star(game, speed, settings, players, join_interval_s, duration_s)
            result.runs[(game, run.workload)] = run
    return result


def format_fig12a(result: Fig12aResult) -> str:
    rows = [
        [game, workload, str(run.supported_players), str(run.max_connected)]
        for (game, workload), run in sorted(result.runs.items())
    ]
    return format_table(["game", "workload", "supported players", "players offered"], rows)


@dataclass
class Fig12bResult:
    """Distribution of supported players for the R workload."""

    supported: dict[str, list[int]] = field(default_factory=dict)

    def median(self, game: str) -> float:
        values = sorted(self.supported[game])
        return float(values[len(values) // 2])


def run_fig12b(
    settings: ExperimentSettings | None = None,
    games: tuple[str, ...] = GAMES,
    players: int = 40,
    join_interval_s: float = 10.0,
    duration_s: float | None = None,
) -> Fig12bResult:
    """Reproduce Figure 12b (randomised workload, repeated runs)."""
    settings = settings or ExperimentSettings()
    if duration_s is None:
        duration_s = players * join_interval_s + 30.0
    result = Fig12bResult()
    for game in games:
        outcomes = []
        for repetition in range(settings.repetitions):
            engine = SimulationEngine(seed=settings.seed + repetition * 101)
            server = build_game_server(game, engine, GameConfig(world_type="default"))
            scenario = random_walk(players=players, duration_s=duration_s)
            scenario.join_interval_s = join_interval_s
            scenario.warmup_s = 0.0
            scenario.run(server)
            metrics = engine.metrics
            tick_series = metrics.series("tick_duration_over_time")
            player_series = metrics.series("players_over_time")
            outcomes.append(
                supported_players_from_series(
                    tick_series.times_ms,
                    tick_series.values,
                    player_series.times_ms,
                    player_series.values,
                )
            )
        result.supported[game] = outcomes
    return result


def format_fig12b(result: Fig12bResult) -> str:
    rows = []
    for game, values in sorted(result.supported.items()):
        ordered = sorted(values)
        rows.append(
            [
                game,
                f"{min(ordered)}",
                f"{result.median(game):.0f}",
                f"{max(ordered)}",
                str(len(ordered)),
            ]
        )
    return format_table(["game", "min", "median", "max", "repetitions"], rows)
