"""Figure 10: QoS of serverless terrain generation under increasing load.

Five players walk away from spawn with a speed that increases over time
(behaviour Sinc).  The figure reports, over time, (a) the distance between a
player and the closest missing terrain — which should stay at the 128-block
view distance — and (b) the tick duration.  Opencraft's local generation falls
behind as the speed grows; Servo's serverless generation keeps up at the cost
of slightly higher tick durations (chunk loading overhead).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.harness import ExperimentSettings, build_game_server, format_table
from repro.server import GameConfig
from repro.sim import SimulationEngine
from repro.workload import Scenario
from repro.workload.behavior import IncreasingSpeedStarBehavior
from repro.workload.bots import BotSwarm, JoinSchedule

GAMES = ("opencraft", "servo")


@dataclass
class TerrainQosRun:
    """Time series collected from one game's Sinc run."""

    game: str
    #: (time s, min distance to missing terrain in blocks)
    view_range: list[tuple[float, float]] = field(default_factory=list)
    #: (time s, tick duration ms)
    tick_durations: list[tuple[float, float]] = field(default_factory=list)

    def minimum_view_range(self) -> float:
        return min(value for _, value in self.view_range)

    def final_view_range(self, window_s: float = 30.0) -> float:
        """Mean view range over the last ``window_s`` seconds of the run."""
        if not self.view_range:
            raise ValueError("no view-range samples")
        end = max(t for t, _ in self.view_range)
        tail = [v for t, v in self.view_range if t >= end - window_s]
        return sum(tail) / len(tail)

    def tick_p95_after(self, start_s: float) -> float:
        values = [v for t, v in self.tick_durations if t >= start_s]
        if not values:
            raise ValueError(f"no tick samples after {start_s} s")
        values.sort()
        return values[int(0.95 * (len(values) - 1))]


@dataclass
class Fig10Result:
    runs: dict[str, TerrainQosRun] = field(default_factory=dict)
    players: int = 5
    duration_s: float = 0.0
    speed_increase_interval_s: float = 200.0


def _run_game(
    game: str,
    settings: ExperimentSettings,
    players: int,
    duration_s: float,
    speed_increase_interval_s: float,
) -> TerrainQosRun:
    engine = SimulationEngine(seed=settings.seed)
    server = build_game_server(game, engine, GameConfig(world_type="default"))
    server.chunks.preload_area(server.config.spawn_position, 160.0)

    behaviors = [
        IncreasingSpeedStarBehavior(
            direction_index=index,
            direction_count=players,
            speed_increase_interval_s=speed_increase_interval_s,
        )
        for index in range(players)
    ]
    swarm = BotSwarm(behaviors, schedule=JoinSchedule.all_at_start())
    driver = swarm.install(server)
    start_ms = engine.now_ms
    server.run_for_seconds(duration_s, before_tick=driver)

    run = TerrainQosRun(game=game)
    view_series = engine.metrics.series("view_range_over_time")
    for time_ms, value in zip(view_series.times_ms, view_series.values):
        run.view_range.append(((time_ms - start_ms) / 1000.0, value))
    tick_series = engine.metrics.series("tick_duration_over_time")
    for time_ms, value in zip(tick_series.times_ms, tick_series.values):
        run.tick_durations.append(((time_ms - start_ms) / 1000.0, value))
    return run


def run_fig10(
    settings: ExperimentSettings | None = None,
    players: int = 5,
    duration_s: float | None = None,
    speed_increase_interval_s: float | None = None,
    games: tuple[str, ...] = GAMES,
) -> Fig10Result:
    """Reproduce Figure 10.

    At paper scale the run lasts 1000 s with the speed increasing every 200 s;
    scaled-down runs shrink both proportionally so the same speed range is
    covered.
    """
    settings = settings or ExperimentSettings()
    if duration_s is None:
        duration_s = max(settings.duration_s * 10.0, 120.0)
    if speed_increase_interval_s is None:
        speed_increase_interval_s = duration_s / 5.0
    result = Fig10Result(
        players=players,
        duration_s=duration_s,
        speed_increase_interval_s=speed_increase_interval_s,
    )
    for game in games:
        result.runs[game] = _run_game(
            game, settings, players, duration_s, speed_increase_interval_s
        )
    return result


def format_fig10(result: Fig10Result) -> str:
    rows = []
    for game, run in sorted(result.runs.items()):
        rows.append(
            [
                game,
                f"{run.minimum_view_range():.0f}",
                f"{run.final_view_range():.0f}",
                f"{run.tick_p95_after(result.duration_s * 0.5):.1f}",
            ]
        )
    return format_table(
        ["game", "min view range (blocks)", "final view range (blocks)", "late-run p95 tick ms"],
        rows,
    )
