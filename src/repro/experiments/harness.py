"""Shared experiment plumbing.

Experiments are parameterised by :class:`ExperimentSettings` so the same code
can run at paper scale (minutes of virtual time, fine-grained sweeps) or at
benchmark scale (seconds of virtual time, coarse sweeps) without changing any
logic.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable

from repro.cluster import build_opencraft_cluster, build_servo_cluster
from repro.core import ServoConfig, build_servo_server
from repro.server import GameConfig, make_minecraft, make_opencraft
from repro.sim import SimulationEngine
from repro.workload import GameHost

#: game name -> default-config factory(engine, game_config) -> GameHost.
#: Each factory builds its variant with default knobs (clusters: 2 shards);
#: ``build_game_server`` layers the ``servo_config`` / ``shards`` arguments
#: on top for the names that accept them.
GAME_FACTORIES: dict[str, Callable[[SimulationEngine, GameConfig], GameHost]] = {
    "opencraft": make_opencraft,
    "minecraft": make_minecraft,
    "servo": lambda engine, config: build_servo_server(engine, config),
    "opencraft-cluster": lambda engine, config: build_opencraft_cluster(engine, config),
    "servo-cluster": lambda engine, config: build_servo_cluster(engine, config),
}

#: the game names that build a multi-shard cluster rather than one server
CLUSTER_GAMES = frozenset({"opencraft-cluster", "servo-cluster"})


@dataclass(frozen=True)
class ExperimentSettings:
    """Knobs shared by every experiment runner."""

    #: base random seed; repetitions derive their own seeds from it
    seed: int = 42
    #: virtual seconds measured per configuration
    duration_s: float = 20.0
    #: step between candidate player counts in max-player searches
    player_step: int = 10
    #: largest player count considered
    max_players: int = 200
    #: repetitions for experiments that report distributions over runs
    repetitions: int = 3
    #: samples for pure latency-distribution experiments
    latency_samples: int = 2000
    #: virtual seconds of warm-up before measurements start (cluster sweeps)
    warmup_s: float = 5.0

    def scaled(self, **overrides) -> "ExperimentSettings":
        """A copy with some fields replaced (used by benchmarks)."""
        return replace(self, **overrides)


#: settings used by the pytest benchmarks: small enough for CI, same code paths
QUICK_SETTINGS = ExperimentSettings(
    duration_s=10.0, player_step=50, max_players=200, repetitions=2, latency_samples=500
)

#: settings that approximate the paper's experiment durations
PAPER_SETTINGS = ExperimentSettings(
    duration_s=60.0, player_step=10, max_players=200, repetitions=20, latency_samples=15000
)


def build_game_server(
    game: str,
    engine: SimulationEngine,
    game_config: GameConfig | None = None,
    servo_config: ServoConfig | None = None,
    shards: int = 2,
) -> GameHost:
    """Build a game host by name.

    Single-server names ("opencraft", "minecraft", "servo") return a
    :class:`~repro.server.GameServer`; cluster names ("opencraft-cluster",
    "servo-cluster") return a :class:`~repro.cluster.ClusterCoordinator` with
    ``shards`` zone shards.  Both satisfy the
    :class:`~repro.workload.GameHost` surface the experiments drive.
    """
    if game not in GAME_FACTORIES:
        raise ValueError(f"unknown game {game!r}; expected one of {sorted(GAME_FACTORIES)}")
    config = game_config or GameConfig()
    if game == "servo":
        return build_servo_server(engine, config, servo_config)
    if game == "servo-cluster":
        return build_servo_cluster(engine, config, servo_config, shards=shards)
    if game == "opencraft-cluster":
        return build_opencraft_cluster(engine, config, shards=shards)
    return GAME_FACTORIES[game](engine, config)


def format_table(headers: list[str], rows: list[list[str]]) -> str:
    """Render a fixed-width text table (used by every experiment's report)."""
    widths = [len(header) for header in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [
        "  ".join(header.ljust(widths[index]) for index, header in enumerate(headers)),
        "  ".join("-" * widths[index] for index in range(len(headers))),
    ]
    for row in rows:
        lines.append("  ".join(cell.ljust(widths[index]) for index, cell in enumerate(row)))
    return "\n".join(lines)
