"""Shared experiment plumbing.

Experiments are parameterised by :class:`ExperimentSettings` so the same code
can run at paper scale (minutes of virtual time, fine-grained sweeps) or at
benchmark scale (seconds of virtual time, coarse sweeps) without changing any
logic.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.api.hosts import ClusterGameView, GameFactoryView, build_host
from repro.api.registry import unknown_name_error
from repro.core import ServoConfig
from repro.server import GameConfig
from repro.sim import SimulationEngine
from repro.workload import GameHost

#: game name -> factory(engine, game_config, *, servo_config=None, shards=None).
#: A live, read-only view of the :data:`repro.api.hosts.HOSTS` registry —
#: every factory accepts the keyword knobs its variant supports, and variants
#: registered with ``@register_host`` (including third-party ones) appear here
#: automatically.  Kept under its historical name for backward compatibility.
GAME_FACTORIES = GameFactoryView()

#: the game names that build a multi-shard cluster rather than one server
#: (a live view, like GAME_FACTORIES)
CLUSTER_GAMES = ClusterGameView()


@dataclass(frozen=True)
class ExperimentSettings:
    """Knobs shared by every experiment runner."""

    #: base random seed; repetitions derive their own seeds from it
    seed: int = 42
    #: virtual seconds measured per configuration
    duration_s: float = 20.0
    #: step between candidate player counts in max-player searches
    player_step: int = 10
    #: largest player count considered
    max_players: int = 200
    #: repetitions for experiments that report distributions over runs
    repetitions: int = 3
    #: samples for pure latency-distribution experiments
    latency_samples: int = 2000
    #: virtual seconds of warm-up before measurements start (cluster sweeps)
    warmup_s: float = 5.0

    def scaled(self, **overrides) -> "ExperimentSettings":
        """A copy with some fields replaced (used by benchmarks)."""
        return replace(self, **overrides)


#: settings used by the pytest benchmarks: small enough for CI, same code paths
QUICK_SETTINGS = ExperimentSettings(
    duration_s=10.0, player_step=50, max_players=200, repetitions=2, latency_samples=500
)

#: settings that approximate the paper's experiment durations
PAPER_SETTINGS = ExperimentSettings(
    duration_s=60.0, player_step=10, max_players=200, repetitions=20, latency_samples=15000
)

#: named settings scales shared by the benchmarks' conftest and the CLI
SETTINGS_SCALES: dict[str, ExperimentSettings] = {
    "quick": QUICK_SETTINGS,
    "paper": PAPER_SETTINGS,
}


def settings_for_scale(scale: str = "quick") -> ExperimentSettings:
    """The named :class:`ExperimentSettings` scale ("quick" or "paper")."""
    if scale not in SETTINGS_SCALES:
        raise unknown_name_error("settings scale", scale, list(SETTINGS_SCALES))
    return SETTINGS_SCALES[scale]


def build_game_server(
    game: str,
    engine: SimulationEngine,
    game_config: GameConfig | None = None,
    servo_config: ServoConfig | None = None,
    shards: int | None = None,
    workers: int | None = None,
) -> GameHost:
    """Build a game host by name, via the :mod:`repro.api.hosts` registry.

    Single-server names ("opencraft", "minecraft", "servo") return a
    :class:`~repro.server.GameServer`; cluster names ("opencraft-cluster",
    "servo-cluster") return a :class:`~repro.cluster.ClusterCoordinator` with
    ``shards`` zone shards.  Both satisfy the
    :class:`~repro.workload.GameHost` surface the experiments drive.  The
    ``servo_config``, ``shards`` and ``workers`` knobs are forwarded only
    when given; giving one to a variant that does not accept it is a
    ``ValueError``.
    """
    return build_host(
        game,
        engine,
        game_config or GameConfig(),
        servo_config=servo_config,
        shards=shards,
        workers=workers,
    )


def format_table(headers: list[str], rows: list[list[str]]) -> str:
    """Render a fixed-width text table (used by every experiment's report)."""
    widths = [len(header) for header in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [
        "  ".join(header.ljust(widths[index]) for index, header in enumerate(headers)),
        "  ".join("-" * widths[index] for index in range(len(headers))),
    ]
    for row in rows:
        lines.append("  ".join(cell.ljust(widths[index]) for index, cell in enumerate(row)))
    return "\n".join(lines)
