"""Figure 8: efficiency of speculative execution.

Left plot: efficiency distribution for tick leads of 0, 10, 20 and 40 ticks
(50-step simulations).  Right plot: efficiency for simulation lengths of 50,
100 and 200 steps (20-tick lead).  Efficiency is the fraction of an
invocation's requested steps that did not have to be recomputed locally.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.constructs.library import build_sized_construct
from repro.core import ServoConfig, build_servo_server
from repro.experiments.harness import ExperimentSettings, format_table
from repro.server import GameConfig
from repro.sim import SimulationEngine
from repro.sim.metrics import BoxplotStats, boxplot_stats
from repro.workload import Scenario
from repro.world.coords import BlockPos

TICK_LEADS = (0, 10, 20, 40)
SIMULATION_LENGTHS = (50, 100, 200)
#: block count of the construct used by the latency-hiding experiments; its
#: per-step cost reproduces the paper's ~1.46 s latency for 200-step runs
OFFLOAD_CONSTRUCT_BLOCKS = 430
DEFAULT_CONSTRUCT_COUNT = 20


@dataclass
class OffloadRunResult:
    """Measurements from one (tick lead, simulation length) configuration."""

    tick_lead: int
    steps: int
    efficiency_samples: list[float] = field(default_factory=list)
    latency_samples_ms: list[float] = field(default_factory=list)
    invocations: int = 0
    window_ms: float = 0.0
    cost_usd: float = 0.0

    def efficiency_stats(self) -> BoxplotStats:
        return boxplot_stats(self.efficiency_samples)

    def latency_stats(self) -> BoxplotStats:
        return boxplot_stats(self.latency_samples_ms)

    def invocations_per_minute(self) -> float:
        if self.window_ms <= 0:
            return 0.0
        return self.invocations * 60_000.0 / self.window_ms

    def cost_per_hour_usd(self) -> float:
        if self.window_ms <= 0:
            return 0.0
        return self.cost_usd * 3_600_000.0 / self.window_ms


def run_offload_configuration(
    tick_lead: int,
    steps: int,
    settings: ExperimentSettings | None = None,
    construct_count: int = DEFAULT_CONSTRUCT_COUNT,
    construct_blocks: int = OFFLOAD_CONSTRUCT_BLOCKS,
) -> OffloadRunResult:
    """Run the latency-hiding workload for one (tick lead, steps) configuration.

    The workload follows Section IV-C: one player, a flat world and a
    population of aperiodic constructs (so the loop detector cannot collapse
    the offloaded work and every invocation simulates its full step budget).
    """
    settings = settings or ExperimentSettings()
    engine = SimulationEngine(seed=settings.seed)
    servo_config = ServoConfig(tick_lead=tick_lead, steps_per_invocation=steps)
    server = build_servo_server(engine, GameConfig(world_type="flat"), servo_config)
    server.chunks.preload_area(server.config.spawn_position, 160.0)
    for index in range(construct_count):
        construct = build_sized_construct(
            construct_blocks, origin=BlockPos(index * 64, 64, 256), looping=False
        )
        server.place_construct(construct)

    scenario = Scenario(
        name=f"offload-lead{tick_lead}-steps{steps}",
        players=1,
        behavior_code="A",
        world_type="flat",
        constructs=0,
        duration_s=settings.duration_s,
        preload_radius_blocks=0.0,
    )
    start_ms = engine.now_ms
    scenario.run(server)
    window_ms = engine.now_ms - start_ms

    runtime = server.runtime
    assert runtime is not None
    metrics = engine.metrics
    return OffloadRunResult(
        tick_lead=tick_lead,
        steps=steps,
        efficiency_samples=metrics.histogram("speculation_efficiency").samples,
        latency_samples_ms=metrics.histogram("offload_latency_ms").samples,
        invocations=int(metrics.counter("offload_invocations")),
        window_ms=window_ms,
        cost_usd=runtime.billing.total_cost_usd(),
    )


@dataclass
class Fig08Result:
    """Efficiency sweeps over tick lead and simulation length."""

    by_tick_lead: dict[int, OffloadRunResult] = field(default_factory=dict)
    by_length: dict[int, OffloadRunResult] = field(default_factory=dict)


def run_fig08(
    settings: ExperimentSettings | None = None,
    tick_leads: tuple[int, ...] = TICK_LEADS,
    lengths: tuple[int, ...] = SIMULATION_LENGTHS,
    lead_sweep_steps: int = 50,
    length_sweep_lead: int = 20,
) -> Fig08Result:
    """Reproduce both panels of Figure 8."""
    settings = settings or ExperimentSettings()
    result = Fig08Result()
    for lead in tick_leads:
        result.by_tick_lead[lead] = run_offload_configuration(lead, lead_sweep_steps, settings)
    for length in lengths:
        result.by_length[length] = run_offload_configuration(length_sweep_lead, length, settings)
    return result


def format_fig08(result: Fig08Result) -> str:
    rows = []
    for lead, run in sorted(result.by_tick_lead.items()):
        stats = run.efficiency_stats()
        rows.append(["tick lead", str(lead), f"{stats.median:.2f}", f"{stats.p5:.2f}", f"{stats.mean:.2f}"])
    for length, run in sorted(result.by_length.items()):
        stats = run.efficiency_stats()
        rows.append(["sim length", str(length), f"{stats.median:.2f}", f"{stats.p5:.2f}", f"{stats.mean:.2f}"])
    return format_table(["sweep", "value", "median eff", "p5 eff", "mean eff"], rows)
