"""Maximum supported players search.

The paper defines the maximum number of supported players as the largest
player count for which fewer than 5 % of tick-duration samples exceed the
50 ms budget (Section IV-B).  The search walks the candidate player counts
with a binary search, exploiting that the over-budget fraction grows
monotonically with the player count.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.core import ServoConfig
from repro.experiments.harness import ExperimentSettings, build_game_server
from repro.server import GameConfig
from repro.sim import SimulationEngine
from repro.workload import behaviour_a
from repro.workload.scenarios import TICK_BUDGET_MS


def search_last_supported(candidates: list[int], supports: Callable[[int], bool]) -> int:
    """Largest candidate for which ``supports`` holds (0 if none).

    Binary search exploiting that support is monotone in the candidate value
    (more players never helps).  Shared by the single-server and cluster
    max-players searches.
    """
    low, high = 0, len(candidates) - 1
    best = 0
    while low <= high:
        middle = (low + high) // 2
        if supports(candidates[middle]):
            best = candidates[middle]
            low = middle + 1
        else:
            high = middle - 1
    return best


@dataclass
class MaxPlayersResult:
    """Result of one max-supported-players search."""

    game: str
    constructs: int
    max_players: int
    #: player count -> fraction of ticks over budget, for every count evaluated
    evaluated: dict[int, float] = field(default_factory=dict)


def _fraction_over_budget(
    game: str,
    players: int,
    constructs: int,
    settings: ExperimentSettings,
    servo_config: ServoConfig | None,
    game_config: GameConfig | None = None,
) -> float:
    engine = SimulationEngine(seed=settings.seed)
    server = build_game_server(
        game,
        engine,
        game_config or GameConfig(world_type="flat"),
        servo_config=servo_config,
    )
    scenario = behaviour_a(
        players=players, constructs=constructs, duration_s=settings.duration_s
    )
    result = scenario.run(server)
    return result.fraction_over_budget(TICK_BUDGET_MS)


def find_max_players(
    game: str,
    constructs: int,
    settings: ExperimentSettings | None = None,
    servo_config: ServoConfig | None = None,
    qos_tolerance: float = 0.05,
    game_config: GameConfig | None = None,
) -> MaxPlayersResult:
    """Find the maximum supported player count for a game and construct count.

    ``game_config`` overrides the default flat-world config — e.g. to enable
    area-of-interest broadcast (``interest_radius_chunks``) and measure the
    player ceiling it buys.
    """
    settings = settings or ExperimentSettings()
    candidates = list(
        range(settings.player_step, settings.max_players + 1, settings.player_step)
    )
    result = MaxPlayersResult(game=game, constructs=constructs, max_players=0)

    def supports(players: int) -> bool:
        fraction = _fraction_over_budget(
            game, players, constructs, settings, servo_config, game_config
        )
        result.evaluated[players] = fraction
        return fraction < qos_tolerance

    result.max_players = search_last_supported(candidates, supports)
    return result
