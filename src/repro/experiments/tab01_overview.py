"""Table I: overview of the experiments.

This module renders the experiment overview table from the scenario registry
and checks that every scenario is runnable.  It is the configuration
counterpart of the per-figure experiments: the paper's Table I maps each
evaluation section to its workload, environment and duration.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.api.registry import unknown_name_error
from repro.experiments.harness import format_table
from repro.workload.scenarios import TABLE_I_SCENARIOS, Scenario

#: the paper's Table I rows: section -> (focus, components serverless)
PAPER_TABLE_I = {
    "IV-B": ("SC: system scalability", "SC offloaded (L+S)"),
    "IV-C": ("SC: latency hiding", "SC offloaded (L+S)"),
    "IV-D": ("TG: QoS", "terrain generation (S)"),
    "IV-E": ("TG: system scalability", "terrain generation + storage (L+S)"),
    "IV-F": ("RS: performance variability", "remote storage (S)"),
    "IV-G": ("SC: performance", "SC offloaded (S)"),
}


@dataclass
class Tab01Result:
    """The rendered experiment overview."""

    rows: list[list[str]] = field(default_factory=list)


def run_tab01() -> Tab01Result:
    """Build the Table I overview from the scenario registry."""
    result = Tab01Result()
    for section, scenario in sorted(TABLE_I_SCENARIOS.items()):
        focus, serverless = PAPER_TABLE_I.get(section, ("-", "-"))
        result.rows.append(
            [
                section,
                focus,
                serverless,
                str(scenario.players),
                scenario.behavior_code,
                scenario.world_type,
                f"{scenario.duration_s:.0f}s",
            ]
        )
    return result


def format_tab01(result: Tab01Result) -> str:
    return format_table(
        ["section", "focus", "serverless components", "players", "behaviour", "world", "duration"],
        result.rows,
    )


def scenario_for(section: str) -> Scenario:
    """The runnable scenario behind one Table I row."""
    if section not in TABLE_I_SCENARIOS:
        raise unknown_name_error("Table I section", section, list(TABLE_I_SCENARIOS))
    return TABLE_I_SCENARIOS[section]
