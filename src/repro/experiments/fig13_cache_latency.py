"""Figure 13: terrain retrieval latency for local, serverless and cached storage.

The experiment replays a terrain access trace (eight players walking away from
spawn) against three storage configurations: the game server's local disk,
raw serverless blob storage, and blob storage behind Servo's cache with
distance-based prefetching.  It reports the inverse CDF of the retrieval
latency observed by the game loop, whose 99.9th percentile must stay below one
simulation step (50 ms) for good QoS.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.experiments.harness import ExperimentSettings, format_table
from repro.sim import SimulationEngine
from repro.sim.metrics import inverse_cdf, percentile
from repro.storage.base import StorageBackend
from repro.storage.blob import AZURE_BLOB_STANDARD, BlobStorage
from repro.storage.cache import CachedStorage
from repro.storage.local import LocalDiskStorage
from repro.storage.prefetch import DistancePrefetchPolicy
from repro.world.chunk import Chunk
from repro.world.coords import BlockPos, ChunkPos, block_to_chunk
from repro.world.serialization import chunk_to_bytes
from repro.world.terrain import make_terrain_generator

CONFIGURATIONS = ("local", "serverless", "serverless+cache")


@dataclass
class TerrainAccessTrace:
    """The chunk keys each player requests as they move, tick by tick."""

    #: per step: (player positions, newly required chunk positions)
    steps: list[tuple[list[BlockPos], list[ChunkPos]]] = field(default_factory=list)
    all_chunks: set[ChunkPos] = field(default_factory=set)


def build_access_trace(
    players: int = 8,
    speed_blocks_per_s: float = 3.0,
    duration_s: float = 120.0,
    view_distance_blocks: float = 128.0,
) -> TerrainAccessTrace:
    """Synthesise the Figure 13 access pattern: star-walking players loading terrain."""
    trace = TerrainAccessTrace()
    view_radius_chunks = int(math.ceil(view_distance_blocks / 16))
    seen: set[ChunkPos] = set()
    step_s = 1.0
    for step in range(int(duration_s / step_s)):
        positions = []
        new_chunks: list[ChunkPos] = []
        for player in range(players):
            angle = 2.0 * math.pi * player / players
            distance = speed_blocks_per_s * step * step_s
            position = BlockPos(int(distance * math.cos(angle)), 65, int(distance * math.sin(angle)))
            positions.append(position)
            center = block_to_chunk(position)
            for dx in range(-view_radius_chunks, view_radius_chunks + 1):
                for dz in range(-view_radius_chunks, view_radius_chunks + 1):
                    if math.hypot(dx, dz) > view_radius_chunks + 0.5:
                        continue
                    chunk_pos = ChunkPos(center.cx + dx, center.cz + dz)
                    if chunk_pos not in seen:
                        seen.add(chunk_pos)
                        new_chunks.append(chunk_pos)
        trace.steps.append((positions, new_chunks))
    trace.all_chunks = seen
    return trace


def _populate(storage: StorageBackend, chunks: set[ChunkPos]) -> None:
    """Persist every chunk of the trace so reads never miss the store.

    A small flat-world chunk payload keeps the experiment fast; the latency
    models do not depend on the exact contents.
    """
    generator = make_terrain_generator("flat", seed=3)
    template: Chunk = generator.generate_chunk(ChunkPos(0, 0))
    payload = chunk_to_bytes(template)
    for position in sorted(chunks):
        storage.write(position.key(), payload)


@dataclass
class Fig13Result:
    """Terrain retrieval latencies per storage configuration."""

    latencies_ms: dict[str, list[float]] = field(default_factory=dict)

    def percentile(self, configuration: str, q: float) -> float:
        return percentile(self.latencies_ms[configuration], q)

    def icdf(self, configuration: str, thresholds: tuple[float, ...] = (16.0, 50.0, 100.0, 250.0, 500.0)):
        return inverse_cdf(self.latencies_ms[configuration], thresholds)


def run_fig13(
    settings: ExperimentSettings | None = None,
    players: int = 8,
    duration_s: float | None = None,
) -> Fig13Result:
    """Reproduce Figure 13."""
    settings = settings or ExperimentSettings()
    if duration_s is None:
        duration_s = max(60.0, settings.duration_s * 4)
    trace = build_access_trace(players=players, duration_s=duration_s)
    result = Fig13Result()

    for configuration in CONFIGURATIONS:
        engine = SimulationEngine(seed=settings.seed)
        if configuration == "local":
            storage: StorageBackend = LocalDiskStorage(rng=engine.rng("local-disk"))
            reader: StorageBackend = storage
            prefetcher = None
        elif configuration == "serverless":
            storage = BlobStorage(rng=engine.rng("blob"), profile=AZURE_BLOB_STANDARD)
            reader = storage
            prefetcher = None
        else:
            blob = BlobStorage(rng=engine.rng("blob"), profile=AZURE_BLOB_STANDARD)
            storage = blob
            reader = CachedStorage(remote=blob, rng=engine.rng("cache"), capacity_objects=8192)
            prefetcher = DistancePrefetchPolicy(prefetch_margin_blocks=48.0)

        _populate(storage, trace.all_chunks)
        latencies: list[float] = []
        for positions, new_chunks in trace.steps:
            if prefetcher is not None and isinstance(reader, CachedStorage):
                plan = prefetcher.plan(positions)
                for chunk_pos in sorted(plan.prefetch | plan.required):
                    key = chunk_pos.key()
                    if storage.exists(key) and not reader.is_cached(key):
                        reader.prefetch(key)
            for chunk_pos in new_chunks:
                operation = reader.read(chunk_pos.key())
                latencies.append(operation.latency_ms)
        result.latencies_ms[configuration] = latencies
    return result


def format_fig13(result: Fig13Result) -> str:
    rows = []
    for configuration in CONFIGURATIONS:
        rows.append(
            [
                configuration,
                f"{result.percentile(configuration, 99):.1f}",
                f"{result.percentile(configuration, 99.9):.1f}",
                f"{max(result.latencies_ms[configuration]):.1f}",
                str(len(result.latencies_ms[configuration])),
            ]
        )
    return format_table(["configuration", "p99 ms", "p99.9 ms", "max ms", "samples"], rows)
