"""Cluster scalability: aggregate capacity vs shard count.

The paper's evaluation stops at one server (~200 players).  This experiment
partitions the world into zones served by cooperating shards and measures the
largest aggregate player count a 1-, 2- and 4-shard cluster sustains while
*every* shard's P99 tick duration stays within the 50 ms budget — the
cluster analogue of the paper's max-supported-players search (Section IV-B).
It also reports the player migrations the workload triggered (every fourth
player spawns next to a zone boundary and wanders across it) and their
handoff latencies through the shared session store.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core import ServoConfig
from repro.experiments.harness import ExperimentSettings, build_game_server, format_table
from repro.experiments.max_players import search_last_supported
from repro.server import GameConfig
from repro.sim import SimulationEngine
from repro.sim.metrics import percentile
from repro.workload import behaviour_a
from repro.workload.scenarios import TICK_BUDGET_MS


@dataclass(frozen=True)
class ClusterMeasurement:
    """One measured cluster run at a fixed shard and player count."""

    shard_count: int
    players: int
    #: P99 tick duration per shard over the measurement window
    per_shard_p99_ms: dict[str, float]
    #: P99 of the lockstep round durations (the slowest shard each round)
    round_p99_ms: float
    #: completed player migrations over the whole run
    migrations: int
    #: median migration handoff latency (0.0 when no migrations occurred)
    migration_latency_p50_ms: float

    @property
    def worst_shard_p99_ms(self) -> float:
        return max(self.per_shard_p99_ms.values())

    def within_budget(self, budget_ms: float = TICK_BUDGET_MS) -> bool:
        return self.worst_shard_p99_ms <= budget_ms


@dataclass
class ClusterScalabilityRow:
    """Search outcome for one shard count."""

    shard_count: int
    max_players: int
    at_max: Optional[ClusterMeasurement]
    #: players evaluated -> worst shard P99 at that count
    evaluated: dict[int, float] = field(default_factory=dict)


@dataclass
class ClusterScalabilityResult:
    """Aggregate capacity as a function of shard count."""

    game: str
    constructs: int
    budget_ms: float
    rows: list[ClusterScalabilityRow] = field(default_factory=list)

    def row(self, shard_count: int) -> ClusterScalabilityRow:
        for row in self.rows:
            if row.shard_count == shard_count:
                return row
        raise KeyError(f"no row for shard_count={shard_count}")

    def baseline_row(self) -> ClusterScalabilityRow:
        """The row with the fewest shards (the comparison baseline)."""
        if not self.rows:
            raise ValueError("the sweep produced no rows")
        return min(self.rows, key=lambda row: row.shard_count)

    def speedup(self, shard_count: int) -> float:
        """Aggregate capacity relative to the smallest cluster measured."""
        base = self.baseline_row().max_players
        if base == 0:
            raise ValueError("the baseline cluster supported no players")
        return self.row(shard_count).max_players / base


def measure_cluster(
    game: str,
    shards: int,
    players: int,
    settings: ExperimentSettings,
    constructs: int = 0,
    servo_config: ServoConfig | None = None,
) -> ClusterMeasurement:
    """Run one cluster scenario and collect per-shard and migration statistics."""
    engine = SimulationEngine(seed=settings.seed)
    cluster = build_game_server(
        game, engine, GameConfig(world_type="flat"), servo_config=servo_config, shards=shards
    )
    scenario = behaviour_a(
        players=players, constructs=constructs, duration_s=settings.duration_s
    )
    scenario.warmup_s = settings.warmup_s
    result = scenario.run(cluster)

    # The scenario measured the last len(result.tick_durations_ms) rounds;
    # shard tick records are index-aligned with cluster rounds (lockstep).
    measured_from = len(cluster.tick_records) - len(result.tick_durations_ms)
    per_shard_p99 = {
        name: percentile(durations, 99)
        for name, durations in cluster.shard_tick_durations_ms(measured_from).items()
    }
    migration_samples = [record.latency_ms for record in cluster.migration_records]
    return ClusterMeasurement(
        shard_count=shards,
        players=players,
        per_shard_p99_ms=per_shard_p99,
        round_p99_ms=percentile(result.tick_durations_ms, 99),
        migrations=len(migration_samples),
        migration_latency_p50_ms=(
            percentile(migration_samples, 50) if migration_samples else 0.0
        ),
    )


def find_cluster_max_players(
    game: str,
    shards: int,
    settings: ExperimentSettings,
    constructs: int = 0,
    servo_config: ServoConfig | None = None,
    budget_ms: float = TICK_BUDGET_MS,
) -> ClusterScalabilityRow:
    """Binary-search the largest player count every shard serves within budget.

    Candidate counts scale with the shard count (an N-shard cluster is probed
    up to N times the single-server search ceiling).
    """
    candidates = list(
        range(settings.player_step, settings.max_players * shards + 1, settings.player_step)
    )
    row = ClusterScalabilityRow(shard_count=shards, max_players=0, at_max=None)
    measurements: dict[int, ClusterMeasurement] = {}

    def supports(players: int) -> bool:
        measurement = measure_cluster(
            game, shards, players, settings, constructs=constructs, servo_config=servo_config
        )
        measurements[players] = measurement
        row.evaluated[players] = measurement.worst_shard_p99_ms
        return measurement.within_budget(budget_ms)

    row.max_players = search_last_supported(candidates, supports)
    row.at_max = measurements.get(row.max_players)
    return row


def run_cluster_scalability(
    settings: ExperimentSettings | None = None,
    game: str = "servo-cluster",
    shard_counts: tuple[int, ...] = (1, 2, 4),
    constructs: int = 0,
    servo_config: ServoConfig | None = None,
) -> ClusterScalabilityResult:
    """Measure aggregate max players for each shard count."""
    settings = settings or ExperimentSettings()
    result = ClusterScalabilityResult(
        game=game, constructs=constructs, budget_ms=TICK_BUDGET_MS
    )
    for shards in shard_counts:
        result.rows.append(
            find_cluster_max_players(
                game, shards, settings, constructs=constructs, servo_config=servo_config
            )
        )
    return result


def format_cluster_scalability(result: ClusterScalabilityResult) -> str:
    """Render the shard-count sweep as a table."""
    baseline = result.baseline_row() if result.rows else None
    headers = [
        "shards",
        "max players",
        f"vs {baseline.shard_count} shard" if baseline else "vs baseline",
        "worst shard P99 (ms)",
        "migrations",
        "migration P50 (ms)",
    ]
    base = baseline.max_players if baseline else 0
    rows = []
    for row in result.rows:
        at_max = row.at_max
        rows.append(
            [
                str(row.shard_count),
                str(row.max_players),
                f"{row.max_players / base:.2f}x" if base else "n/a",
                f"{at_max.worst_shard_p99_ms:.1f}" if at_max else "n/a",
                str(at_max.migrations) if at_max else "0",
                f"{at_max.migration_latency_p50_ms:.1f}" if at_max else "n/a",
            ]
        )
    title = (
        f"Aggregate supported players, {result.game} "
        f"({result.constructs} constructs, budget {result.budget_ms:.0f} ms per shard)"
    )
    return f"{title}\n{format_table(headers, rows)}"
