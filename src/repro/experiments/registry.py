"""Registry of all reproduced experiments."""

from __future__ import annotations

import inspect
from dataclasses import dataclass
from typing import Any, Callable

from repro.api.registry import unknown_name_error
from repro.experiments.availability import format_availability, run_availability
from repro.experiments.cluster_scalability import (
    format_cluster_scalability,
    run_cluster_scalability,
)
from repro.experiments.fig01_headline import format_fig01, run_fig01
from repro.experiments.fig03_storage_latency import format_fig03, run_fig03
from repro.experiments.fig07_scalability import (
    format_fig07a,
    format_fig07b,
    run_fig07a,
    run_fig07b,
)
from repro.experiments.fig08_efficiency import format_fig08, run_fig08
from repro.experiments.fig09_latency_invocations import format_fig09, run_fig09
from repro.experiments.fig10_terrain_qos import format_fig10, run_fig10
from repro.experiments.fig11_lambda_memory import format_fig11, run_fig11
from repro.experiments.fig12_terrain_scalability import (
    format_fig12a,
    format_fig12b,
    run_fig12a,
    run_fig12b,
)
from repro.experiments.fig13_cache_latency import format_fig13, run_fig13
from repro.experiments.flash_crowd import format_flash_crowd, run_flash_crowd
from repro.experiments.harness import ExperimentSettings
from repro.experiments.sec4g_construct_perf import format_sec4g, run_sec4g
from repro.experiments.tab01_overview import format_tab01, run_tab01


@dataclass(frozen=True)
class ExperimentEntry:
    """One reproduced table or figure."""

    experiment_id: str
    description: str
    runner: Callable[..., Any]
    formatter: Callable[[Any], str]

    def run(self, settings: ExperimentSettings | None = None, **kwargs) -> Any:
        if not inspect.signature(self.runner).parameters:
            return self.runner()  # configuration-only runners (e.g. tab01)
        return self.runner(settings, **kwargs)


EXPERIMENTS: dict[str, ExperimentEntry] = {
    "fig01": ExperimentEntry("fig01", "Headline maximum supported players", run_fig01, format_fig01),
    "fig03": ExperimentEntry("fig03", "Blob storage download latency", run_fig03, format_fig03),
    "fig07a": ExperimentEntry("fig07a", "Max players vs construct count", run_fig07a, format_fig07a),
    "fig07b": ExperimentEntry("fig07b", "Tick-duration distributions at 200 constructs", run_fig07b, format_fig07b),
    "fig08": ExperimentEntry("fig08", "Speculation efficiency vs tick lead and length", run_fig08, format_fig08),
    "fig09": ExperimentEntry("fig09", "Offload latency, invocation rate and cost", run_fig09, format_fig09),
    "fig10": ExperimentEntry("fig10", "Serverless terrain generation QoS", run_fig10, format_fig10),
    "fig11": ExperimentEntry("fig11", "Terrain generation vs Lambda memory", run_fig11, format_fig11),
    "fig12a": ExperimentEntry("fig12a", "Supported players for S3/S8 workloads", run_fig12a, format_fig12a),
    "fig12b": ExperimentEntry("fig12b", "Supported players for the R workload", run_fig12b, format_fig12b),
    "fig13": ExperimentEntry("fig13", "Terrain retrieval latency with caching", run_fig13, format_fig13),
    "sec4g": ExperimentEntry("sec4g", "Construct simulation rate by size", run_sec4g, format_sec4g),
    "tab01": ExperimentEntry("tab01", "Experiment overview", run_tab01, format_tab01),
    "availability": ExperimentEntry(
        "availability",
        "Shard-failure recovery: MTTR, sessions recovered, lost work (beyond the paper)",
        run_availability,
        format_availability,
    ),
    "cluster": ExperimentEntry(
        "cluster",
        "Aggregate max players of zone-partitioned clusters (beyond the paper)",
        run_cluster_scalability,
        format_cluster_scalability,
    ),
    "flash-crowd": ExperimentEntry(
        "flash-crowd",
        "Flash crowd at spawn: interest management vs legacy broadcast (beyond the paper)",
        run_flash_crowd,
        format_flash_crowd,
    ),
}


def run_experiment(
    experiment_id: str, settings: ExperimentSettings | None = None, **kwargs
) -> tuple[Any, str]:
    """Run an experiment by id and return (result, formatted report).

    Unknown ids raise the shared registry error (a ``ValueError`` that is
    also a ``KeyError``) listing every registered experiment.
    """
    if experiment_id not in EXPERIMENTS:
        raise unknown_name_error("experiment", experiment_id, list(EXPERIMENTS))
    entry = EXPERIMENTS[experiment_id]
    result = entry.run(settings, **kwargs)
    return result, entry.formatter(result)
