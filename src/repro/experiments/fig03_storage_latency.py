"""Figure 3: download latency of game data from Azure Blob Storage.

The figure motivates Servo's caching design: end-to-end download latencies of
player data and terrain data, for the premium and standard storage tiers, are
large and variable compared to the 100 ms budget of first-person games.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.experiments.harness import ExperimentSettings, format_table
from repro.net.latency import GENRE_LATENCY_THRESHOLDS_MS
from repro.sim.metrics import BoxplotStats, boxplot_stats
from repro.storage.blob import download_latency_profile

DATA_KINDS = ("player", "terrain")
TIERS = ("premium", "standard")


@dataclass
class StorageLatencyResult:
    """Latency distributions per (data kind, tier)."""

    samples: dict[tuple[str, str], list[float]] = field(default_factory=dict)

    def stats(self, data_kind: str, tier: str) -> BoxplotStats:
        return boxplot_stats(self.samples[(data_kind, tier)])

    def exceeds_fps_budget_fraction(self, data_kind: str, tier: str) -> float:
        values = np.asarray(self.samples[(data_kind, tier)])
        return float(np.mean(values > GENRE_LATENCY_THRESHOLDS_MS["fps"]))


def run_fig03(settings: ExperimentSettings | None = None) -> StorageLatencyResult:
    """Reproduce Figure 3 by sampling the calibrated download profiles."""
    settings = settings or ExperimentSettings()
    rng = np.random.default_rng(settings.seed)
    result = StorageLatencyResult()
    for data_kind in DATA_KINDS:
        for tier in TIERS:
            model = download_latency_profile(data_kind, tier)
            result.samples[(data_kind, tier)] = [
                model.sample(rng) for _ in range(settings.latency_samples)
            ]
    return result


def format_fig03(result: StorageLatencyResult) -> str:
    rows = []
    for data_kind in DATA_KINDS:
        for tier in TIERS:
            stats = result.stats(data_kind, tier)
            rows.append(
                [
                    data_kind,
                    tier,
                    f"{stats.median:.0f}",
                    f"{stats.p95:.0f}",
                    f"{stats.maximum:.0f}",
                    f"{100 * result.exceeds_fps_budget_fraction(data_kind, tier):.0f}%",
                ]
            )
    return format_table(
        ["data", "tier", "median ms", "p95 ms", "max ms", "> FPS budget"], rows
    )
