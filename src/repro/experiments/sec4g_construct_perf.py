"""Section IV-G: speculative simulation rate for small and medium constructs.

The paper measures, for constructs of 252 and 484 blocks, the rate at which
the offload function simulates 100-step batches: at least 95 % of samples
reach 488 and 105 updates per second respectively — 24.4x and 5.3x faster than
the 20 Hz simulation rate, which is what makes speculation effective for
small- and medium-sized constructs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.constructs.library import build_sized_construct
from repro.core.offload import SC_SIMULATION_FUNCTION, OffloadRequest, make_simulation_handler
from repro.experiments.harness import ExperimentSettings, format_table
from repro.faas import AWS_LAMBDA, FaasPlatform, FunctionDefinition
from repro.sim import SimulationEngine
from repro.sim.metrics import percentile
from repro.world.coords import BlockPos

CONSTRUCT_SIZES = (252, 484)
STEPS_PER_SAMPLE = 100
#: the paper's reported p5 rates (updates per second) per construct size
PAPER_P5_RATES = {252: 488.0, 484: 105.0}
SIMULATION_RATE_HZ = 20.0


@dataclass
class Sec4gResult:
    """Simulation-rate samples (updates/second) per construct size."""

    rates_per_size: dict[int, list[float]] = field(default_factory=dict)

    def p5_rate(self, size: int) -> float:
        """The rate at least 95 % of samples achieve."""
        return percentile(self.rates_per_size[size], 5)

    def speedup_over_simulation_rate(self, size: int) -> float:
        return self.p5_rate(size) / SIMULATION_RATE_HZ


def run_sec4g(
    settings: ExperimentSettings | None = None,
    sizes: tuple[int, ...] = CONSTRUCT_SIZES,
    steps: int = STEPS_PER_SAMPLE,
    samples_per_size: int | None = None,
) -> Sec4gResult:
    """Reproduce the Section IV-G measurement."""
    settings = settings or ExperimentSettings()
    if samples_per_size is None:
        samples_per_size = max(20, settings.latency_samples // 25)
    result = Sec4gResult()
    for size in sizes:
        engine = SimulationEngine(seed=settings.seed + size)
        platform = FaasPlatform(engine, provider=AWS_LAMBDA)
        platform.register(
            FunctionDefinition(
                name=SC_SIMULATION_FUNCTION,
                handler=make_simulation_handler(),
                memory_mb=1769,
            )
        )
        construct = build_sized_construct(size, origin=BlockPos(0, 64, 0), looping=False)
        rates = []
        for _ in range(samples_per_size):
            request = OffloadRequest.from_construct(construct, steps=steps, detect_loops=False)
            invocation = platform.invoke(SC_SIMULATION_FUNCTION, request)
            rates.append(steps / (invocation.execution_ms / 1000.0))
            # Advance the construct so consecutive samples cover different state
            # windows, then space invocations out to stay on warm environments.
            construct.apply_state(invocation.result.sequence.state_at(construct.step + steps))
            engine.advance_by(1000.0)
        result.rates_per_size[size] = rates
    return result


def format_sec4g(result: Sec4gResult) -> str:
    rows = []
    for size in sorted(result.rates_per_size):
        p5 = result.p5_rate(size)
        paper = PAPER_P5_RATES.get(size)
        rows.append(
            [
                str(size),
                f"{paper:.0f}" if paper is not None else "-",
                f"{p5:.0f}",
                f"{result.speedup_over_simulation_rate(size):.1f}x",
            ]
        )
    return format_table(
        ["construct blocks", "paper p5 rate (updates/s)", "measured p5 rate", "speedup vs 20 Hz"],
        rows,
    )
